//go:build amd64

#include "textflag.h"

// func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)
//
// For each j: o_r[j] = (o_r[j] + av[r]*bp[j]) + av[4+r]*bq[j], r=0..3.
// VMULPD/VADDPD only — FMA would fuse the two roundings the scalar code
// performs and break bitwise equality with the Go kernels.
TEXT ·band2pAVX2(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast the eight band coefficients once.
	VBROADCASTSD 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSD 8(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSD 16(AX), Y2 // av02 (row 2, column p)
	VBROADCASTSD 24(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSD 32(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSD 40(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSD 48(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSD 56(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // vector loop end (n & ^3)

loop4:
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R12)(DX*8), Y8 // bp[j:j+4]
	VMOVUPD (R13)(DX*8), Y9 // bq[j:j+4]

	// row 0: o = (o + av00*bp) + av10*bq
	VMOVUPD (R8)(DX*8), Y10
	VMULPD  Y8, Y0, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y4, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R8)(DX*8)

	// row 1
	VMOVUPD (R9)(DX*8), Y10
	VMULPD  Y8, Y1, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y5, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R9)(DX*8)

	// row 2
	VMOVUPD (R10)(DX*8), Y10
	VMULPD  Y8, Y2, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y6, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R10)(DX*8)

	// row 3
	VMOVUPD (R11)(DX*8), Y10
	VMULPD  Y8, Y3, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y7, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R11)(DX*8)

	ADDQ $4, DX
	JMP  loop4

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R12)(DX*8), X8
	VMOVSD (R13)(DX*8), X9

	// row 0
	VMOVSD (R8)(DX*8), X10
	VMULSD X8, X0, X11
	VADDSD X11, X10, X10
	VMULSD X9, X4, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R8)(DX*8)

	// row 1
	VMOVSD (R9)(DX*8), X10
	VMULSD X8, X1, X11
	VADDSD X11, X10, X10
	VMULSD X9, X5, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R9)(DX*8)

	// row 2
	VMOVSD (R10)(DX*8), X10
	VMULSD X8, X2, X11
	VADDSD X11, X10, X10
	VMULSD X9, X6, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R10)(DX*8)

	// row 3
	VMOVSD (R11)(DX*8), X10
	VMULSD X8, X3, X11
	VADDSD X11, X10, X10
	VMULSD X9, X7, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R11)(DX*8)

	INCQ DX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpyAVX2(o, b *float64, s float64, n int)
//
// o[j] += s*b[j]; one multiply then one add per element, matching the
// scalar axpy's rounding exactly.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSD s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // 2x-unrolled vector loop end (n & ^7)

loop8:
	CMPQ DX, BX
	JGE  loop4
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	VMOVUPD 32(R9)(DX*8), Y3
	VMULPD  Y3, Y0, Y3
	VMOVUPD 32(R8)(DX*8), Y4
	VADDPD  Y3, Y4, Y4
	VMOVUPD Y4, 32(R8)(DX*8)
	ADDQ    $8, DX
	JMP     loop8

loop4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	ADDQ    $4, DX

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R9)(DX*8), X1
	VMULSD X1, X0, X1
	VMOVSD (R8)(DX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (R8)(DX*8)
	INCQ   DX
	JMP    tail

done:
	VZEROUPPER
	RET

// func ntPanelAVX2(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)
//
// s[4*r+jj] = sum_p a_r[p] * panel[4p+jj], accumulated in ascending-p
// order with separate VMULPD/VADDPD: each lane of Y0..Y3 is one output
// element's single accumulator chain, exactly the Go panel loop's
// s += av*v sequence, so the bitwise contract holds. One VMOVUPD streams
// the packed panel column group; the four a coefficients broadcast.
TEXT ·ntPanelAVX2(SB), NOSPLIT, $0-56
	MOVQ s+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), R12
	MOVQ k+48(FP), CX

	VXORPD Y0, Y0, Y0       // s row 0, columns j..j+3
	VXORPD Y1, Y1, Y1       // s row 1
	VXORPD Y2, Y2, Y2       // s row 2
	VXORPD Y3, Y3, Y3       // s row 3

	XORQ DX, DX             // p

ntloop:
	CMPQ DX, CX
	JGE  ntdone
	VMOVUPD      (R12), Y4  // panel[4p : 4p+4]
	VBROADCASTSD (R8)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y0, Y0
	VBROADCASTSD (R9)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y1, Y1
	VBROADCASTSD (R10)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y2, Y2
	VBROADCASTSD (R11)(DX*8), Y5
	VMULPD       Y4, Y5, Y5
	VADDPD       Y5, Y3, Y3
	ADDQ         $32, R12
	INCQ         DX
	JMP          ntloop

ntdone:
	VMOVUPD Y0, 0(DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Fast-math inference kernels. Unlike everything above, these use
// VFMADD231: one rounding per multiply-add. They are bitwise-identical
// to the pure-Go math.FMA mirrors in kernels_fast.go, NOT to the scalar
// references, and are reachable only from fast-math forward tapes.
// ---------------------------------------------------------------------

// func band2pFMA(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)
//
// o_r[j] = fma(av[4+r], bq[j], fma(av[r], bp[j], o_r[j])), r=0..3.
TEXT ·band2pFMA(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	VBROADCASTSD 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSD 8(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSD 16(AX), Y2 // av02 (row 2, column p)
	VBROADCASTSD 24(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSD 32(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSD 40(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSD 48(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSD 56(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // vector loop end (n & ^3)

floop4:
	CMPQ DX, BX
	JGE  ftail
	VMOVUPD (R12)(DX*8), Y8 // bp[j:j+4]
	VMOVUPD (R13)(DX*8), Y9 // bq[j:j+4]

	// row 0: o = fma(av10, bq, fma(av00, bp, o))
	VMOVUPD     (R8)(DX*8), Y10
	VFMADD231PD Y8, Y0, Y10
	VFMADD231PD Y9, Y4, Y10
	VMOVUPD     Y10, (R8)(DX*8)

	// row 1
	VMOVUPD     (R9)(DX*8), Y10
	VFMADD231PD Y8, Y1, Y10
	VFMADD231PD Y9, Y5, Y10
	VMOVUPD     Y10, (R9)(DX*8)

	// row 2
	VMOVUPD     (R10)(DX*8), Y10
	VFMADD231PD Y8, Y2, Y10
	VFMADD231PD Y9, Y6, Y10
	VMOVUPD     Y10, (R10)(DX*8)

	// row 3
	VMOVUPD     (R11)(DX*8), Y10
	VFMADD231PD Y8, Y3, Y10
	VFMADD231PD Y9, Y7, Y10
	VMOVUPD     Y10, (R11)(DX*8)

	ADDQ $4, DX
	JMP  floop4

ftail:
	CMPQ DX, CX
	JGE  fdone
	VMOVSD (R12)(DX*8), X8
	VMOVSD (R13)(DX*8), X9

	// row 0
	VMOVSD      (R8)(DX*8), X10
	VFMADD231SD X8, X0, X10
	VFMADD231SD X9, X4, X10
	VMOVSD      X10, (R8)(DX*8)

	// row 1
	VMOVSD      (R9)(DX*8), X10
	VFMADD231SD X8, X1, X10
	VFMADD231SD X9, X5, X10
	VMOVSD      X10, (R9)(DX*8)

	// row 2
	VMOVSD      (R10)(DX*8), X10
	VFMADD231SD X8, X2, X10
	VFMADD231SD X9, X6, X10
	VMOVSD      X10, (R10)(DX*8)

	// row 3
	VMOVSD      (R11)(DX*8), X10
	VFMADD231SD X8, X3, X10
	VFMADD231SD X9, X7, X10
	VMOVSD      X10, (R11)(DX*8)

	INCQ DX
	JMP  ftail

fdone:
	VZEROUPPER
	RET

// func axpyFMA(o, b *float64, s float64, n int)
//
// o[j] = fma(s, b[j], o[j]).
TEXT ·axpyFMA(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSD s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // 2x-unrolled vector loop end (n & ^7)

faloop8:
	CMPQ DX, BX
	JGE  faloop4
	VMOVUPD     (R9)(DX*8), Y1
	VMOVUPD     (R8)(DX*8), Y2
	VFMADD231PD Y1, Y0, Y2
	VMOVUPD     Y2, (R8)(DX*8)
	VMOVUPD     32(R9)(DX*8), Y3
	VMOVUPD     32(R8)(DX*8), Y4
	VFMADD231PD Y3, Y0, Y4
	VMOVUPD     Y4, 32(R8)(DX*8)
	ADDQ        $8, DX
	JMP         faloop8

faloop4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  fatail
	VMOVUPD     (R9)(DX*8), Y1
	VMOVUPD     (R8)(DX*8), Y2
	VFMADD231PD Y1, Y0, Y2
	VMOVUPD     Y2, (R8)(DX*8)
	ADDQ        $4, DX

fatail:
	CMPQ DX, CX
	JGE  fadone
	VMOVSD      (R9)(DX*8), X1
	VMOVSD      (R8)(DX*8), X2
	VFMADD231SD X1, X0, X2
	VMOVSD      X2, (R8)(DX*8)
	INCQ        DX
	JMP         fatail

fadone:
	VZEROUPPER
	RET

// func ntPanelFMA(s *[16]float64, a0, a1, a2, a3, panel *float64, k int)
//
// ntPanelAVX2 with fused rounding:
// s[4*r+jj] = fma(a_r[p], panel[4p+jj], s[4*r+jj]) ascending p.
TEXT ·ntPanelFMA(SB), NOSPLIT, $0-56
	MOVQ s+0(FP), DI
	MOVQ a0+8(FP), R8
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ panel+40(FP), R12
	MOVQ k+48(FP), CX

	VXORPD Y0, Y0, Y0       // s row 0, columns j..j+3
	VXORPD Y1, Y1, Y1       // s row 1
	VXORPD Y2, Y2, Y2       // s row 2
	VXORPD Y3, Y3, Y3       // s row 3

	XORQ DX, DX             // p

fntloop:
	CMPQ DX, CX
	JGE  fntdone
	VMOVUPD      (R12), Y4  // panel[4p : 4p+4]
	VBROADCASTSD (R8)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y0
	VBROADCASTSD (R9)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y1
	VBROADCASTSD (R10)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y2
	VBROADCASTSD (R11)(DX*8), Y5
	VFMADD231PD  Y4, Y5, Y3
	ADDQ         $32, R12
	INCQ         DX
	JMP          fntloop

fntdone:
	VMOVUPD Y0, 0(DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func dotFMA(a, b *float64, n int) float64
//
// Striped fused dot product: eight accumulator lanes (two Y registers)
// walk the vectors in steps of 8, then lane l of the step-8 prefix is
// reduced as ((A0+A2)+(A1+A3)) with A_l = acc[l]+acc[l+4], and the
// scalar n%8 tail accumulates on its own fused chain added last. The
// pure-Go fallback in kernels_fast.go mirrors this exact order.
TEXT ·dotFMA(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+16(FP), CX

	VXORPD Y0, Y0, Y0       // acc[0..3]
	VXORPD Y1, Y1, Y1       // acc[4..7]
	VXORPD X5, X5, X5       // scalar tail accumulator

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // vector loop end (n & ^7)

dloop8:
	CMPQ DX, BX
	JGE  dtail
	VMOVUPD     (R8)(DX*8), Y2
	VMOVUPD     (R9)(DX*8), Y3
	VFMADD231PD Y3, Y2, Y0
	VMOVUPD     32(R8)(DX*8), Y2
	VMOVUPD     32(R9)(DX*8), Y3
	VFMADD231PD Y3, Y2, Y1
	ADDQ        $8, DX
	JMP         dloop8

dtail:
	CMPQ DX, CX
	JGE  dreduce
	VMOVSD      (R8)(DX*8), X2
	VMOVSD      (R9)(DX*8), X3
	VFMADD231SD X3, X2, X5
	INCQ        DX
	JMP         dtail

dreduce:
	VADDPD       Y1, Y0, Y0 // A_l = acc[l] + acc[l+4]
	VEXTRACTF128 $1, Y0, X1 // X1 = (A2, A3)
	VADDPD       X1, X0, X0 // (A0+A2, A1+A3)
	VHADDPD      X0, X0, X0 // (A0+A2)+(A1+A3)
	VADDSD       X5, X0, X0 // + tail chain
	VMOVSD       X0, ret+24(FP)
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Single-precision inference kernels: the float32 tier, 8 lanes per
// vector where the f64 FMA kernels run 4. Reachable only from f32
// forward tapes. NOT bitwise-pinned to the pure-Go mirrors (which fuse
// through float64 and can double-round on ties); TestF32KernelsULPBound
// holds the two paths together instead.
// ---------------------------------------------------------------------

// func band2pFMA32(o0, o1, o2, o3, bp, bq *float32, av *[8]float32, n int)
//
// o_r[j] = fma(av[4+r], bq[j], fma(av[r], bp[j], o_r[j])), r=0..3.
TEXT ·band2pFMA32(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	VBROADCASTSS 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSS 4(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSS 8(AX), Y2  // av02 (row 2, column p)
	VBROADCASTSS 12(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSS 16(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSS 20(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSS 24(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSS 28(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-8, BX            // vector loop end (n & ^7)

sloop8:
	CMPQ DX, BX
	JGE  stail
	VMOVUPS (R12)(DX*4), Y8 // bp[j:j+8]
	VMOVUPS (R13)(DX*4), Y9 // bq[j:j+8]

	// row 0: o = fma(av10, bq, fma(av00, bp, o))
	VMOVUPS     (R8)(DX*4), Y10
	VFMADD231PS Y8, Y0, Y10
	VFMADD231PS Y9, Y4, Y10
	VMOVUPS     Y10, (R8)(DX*4)

	// row 1
	VMOVUPS     (R9)(DX*4), Y10
	VFMADD231PS Y8, Y1, Y10
	VFMADD231PS Y9, Y5, Y10
	VMOVUPS     Y10, (R9)(DX*4)

	// row 2
	VMOVUPS     (R10)(DX*4), Y10
	VFMADD231PS Y8, Y2, Y10
	VFMADD231PS Y9, Y6, Y10
	VMOVUPS     Y10, (R10)(DX*4)

	// row 3
	VMOVUPS     (R11)(DX*4), Y10
	VFMADD231PS Y8, Y3, Y10
	VFMADD231PS Y9, Y7, Y10
	VMOVUPS     Y10, (R11)(DX*4)

	ADDQ $8, DX
	JMP  sloop8

stail:
	CMPQ DX, CX
	JGE  sdone
	VMOVSS (R12)(DX*4), X8
	VMOVSS (R13)(DX*4), X9

	// row 0
	VMOVSS      (R8)(DX*4), X10
	VFMADD231SS X8, X0, X10
	VFMADD231SS X9, X4, X10
	VMOVSS      X10, (R8)(DX*4)

	// row 1
	VMOVSS      (R9)(DX*4), X10
	VFMADD231SS X8, X1, X10
	VFMADD231SS X9, X5, X10
	VMOVSS      X10, (R9)(DX*4)

	// row 2
	VMOVSS      (R10)(DX*4), X10
	VFMADD231SS X8, X2, X10
	VFMADD231SS X9, X6, X10
	VMOVSS      X10, (R10)(DX*4)

	// row 3
	VMOVSS      (R11)(DX*4), X10
	VFMADD231SS X8, X3, X10
	VFMADD231SS X9, X7, X10
	VMOVSS      X10, (R11)(DX*4)

	INCQ DX
	JMP  stail

sdone:
	VZEROUPPER
	RET

// func axpyFMA32(o, b *float32, s float32, n int)
//
// o[j] = fma(s, b[j], o[j]).
TEXT ·axpyFMA32(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSS s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-16, BX           // 2x-unrolled vector loop end (n & ^15)

saloop16:
	CMPQ DX, BX
	JGE  saloop8
	VMOVUPS     (R9)(DX*4), Y1
	VMOVUPS     (R8)(DX*4), Y2
	VFMADD231PS Y1, Y0, Y2
	VMOVUPS     Y2, (R8)(DX*4)
	VMOVUPS     32(R9)(DX*4), Y3
	VMOVUPS     32(R8)(DX*4), Y4
	VFMADD231PS Y3, Y0, Y4
	VMOVUPS     Y4, 32(R8)(DX*4)
	ADDQ        $16, DX
	JMP         saloop16

saloop8:
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ DX, BX
	JGE  satail
	VMOVUPS     (R9)(DX*4), Y1
	VMOVUPS     (R8)(DX*4), Y2
	VFMADD231PS Y1, Y0, Y2
	VMOVUPS     Y2, (R8)(DX*4)
	ADDQ        $8, DX

satail:
	CMPQ DX, CX
	JGE  sadone
	VMOVSS      (R9)(DX*4), X1
	VMOVSS      (R8)(DX*4), X2
	VFMADD231SS X1, X0, X2
	VMOVSS      X2, (R8)(DX*4)
	INCQ        DX
	JMP         satail

sadone:
	VZEROUPPER
	RET

// func dotFMA32(a, b *float32, n int) float32
//
// Striped fused float32 dot product: sixteen accumulator lanes (two Y
// registers) walk the vectors in steps of 16, reduced lane-pairwise
// (acc[l]+acc[l+8] per lane, cross-half add, then two horizontal adds),
// and the scalar n%16 tail accumulates on its own fused chain added
// last. dot32 in kernels_f32.go mirrors this order.
TEXT ·dotFMA32(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+16(FP), CX

	VXORPS Y0, Y0, Y0       // acc[0..7]
	VXORPS Y1, Y1, Y1       // acc[8..15]
	VXORPS X5, X5, X5       // scalar tail accumulator

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-16, BX           // vector loop end (n & ^15)

sdloop16:
	CMPQ DX, BX
	JGE  sdtail
	VMOVUPS     (R8)(DX*4), Y2
	VMOVUPS     (R9)(DX*4), Y3
	VFMADD231PS Y3, Y2, Y0
	VMOVUPS     32(R8)(DX*4), Y2
	VMOVUPS     32(R9)(DX*4), Y3
	VFMADD231PS Y3, Y2, Y1
	ADDQ        $16, DX
	JMP         sdloop16

sdtail:
	CMPQ DX, CX
	JGE  sdreduce
	VMOVSS      (R8)(DX*4), X2
	VMOVSS      (R9)(DX*4), X3
	VFMADD231SS X3, X2, X5
	INCQ        DX
	JMP         sdtail

sdreduce:
	VADDPS       Y1, Y0, Y0 // lane l: acc[l] + acc[l+8]
	VEXTRACTF128 $1, Y0, X1 // upper half (lanes 4..7)
	VADDPS       X1, X0, X0 // s_l = (acc[l]+acc[l+8]) + (acc[l+4]+acc[l+12])
	VHADDPS      X0, X0, X0 // (s0+s1, s2+s3, ...)
	VHADDPS      X0, X0, X0 // (s0+s1)+(s2+s3)
	VADDSS       X5, X0, X0 // + tail chain
	VMOVSS       X0, ret+24(FP)
	VZEROUPPER
	RET

// func vexpFMA32(o, x, consts *float32, n int)
//
// 8-lane exp under expf32's contract; n is a multiple of 8. consts
// points at expConsts32: 14 pre-broadcast 8-lane rows at 32-byte
// offsets — 0 maxIn, 32 minIn, 64 log2e, 96 ln2hi, 128 ln2lo,
// 160..320 poly c0..c5, 352 one, 384 exponent bias (dwords), 416 +Inf.
// The input clamps into [minIn, maxIn] for the reduction (so the
// int32 conversion cannot overflow); overflow, underflow and NaN lanes
// are repaired afterwards by masks compared against the original input,
// which reproduces the scalar's edge behavior exactly.
TEXT ·vexpFMA32(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ x+8(FP), R9
	MOVQ consts+16(FP), R14
	MOVQ n+24(FP), CX

	XORQ DX, DX

veloop:
	CMPQ DX, CX
	JGE  vedone
	VMOVUPS (R9)(DX*4), Y0          // x

	// Reduction: n = rne(xc * log2e), r = xc - n*ln2hi - n*ln2lo.
	VMAXPS       32(R14), Y0, Y1    // xc = max(x, minIn)
	VMINPS       (R14), Y1, Y1     // xc = min(xc, maxIn)
	VMULPS       64(R14), Y1, Y2
	VCVTPS2DQ    Y2, Y6             // ni, rounded to nearest even
	VCVTDQ2PS    Y6, Y2             // nf
	VMOVAPS      Y1, Y3
	VFNMADD231PS 96(R14), Y2, Y3    // r = xc - nf*ln2hi
	VFNMADD231PS 128(R14), Y2, Y3   // r -= nf*ln2lo

	// Degree-5 polynomial, fused Horner steps: p = r*p + c_k.
	VMOVUPS     160(R14), Y4        // c0
	VFMADD213PS 192(R14), Y3, Y4
	VFMADD213PS 224(R14), Y3, Y4
	VFMADD213PS 256(R14), Y3, Y4
	VFMADD213PS 288(R14), Y3, Y4
	VFMADD213PS 320(R14), Y3, Y4

	// y = p*r*r + r + 1.
	VMULPS      Y3, Y3, Y5
	VFMADD213PS Y3, Y5, Y4
	VADDPS      352(R14), Y4, Y4

	// Scale by 2^n in two half-factors (n1 = n>>1, n2 = n-n1), so
	// n=128 near the overflow edge stays finite — same trick as the
	// scalar.
	VPSRAD $1, Y6, Y7
	VPSUBD Y7, Y6, Y6
	VPADDD 384(R14), Y7, Y7
	VPSLLD $23, Y7, Y7
	VPADDD 384(R14), Y6, Y6
	VPSLLD $23, Y6, Y6
	VMULPS Y7, Y4, Y4
	VMULPS Y6, Y4, Y4

	// Edge repair against the original input: x > maxIn -> +Inf,
	// x < minIn -> 0, NaN -> x. The compares are false on NaN, so the
	// unordered blend last wins.
	VCMPPS    $6, (R14), Y0, Y1     // NLE: x > maxIn
	VMOVUPS   416(R14), Y2
	VBLENDVPS Y1, Y2, Y4, Y4
	VCMPPS    $1, 32(R14), Y0, Y1   // LT: x < minIn
	VXORPS    Y2, Y2, Y2
	VBLENDVPS Y1, Y2, Y4, Y4
	VCMPPS    $3, Y0, Y0, Y1        // UNORD: NaN lanes
	VBLENDVPS Y1, Y0, Y4, Y4

	VMOVUPS Y4, (R8)(DX*4)
	ADDQ    $8, DX
	JMP     veloop

vedone:
	VZEROUPPER
	RET

// func vaddFMA32(o, a, b *float32, n int)
//
// o[j] = a[j] + b[j]: plain VADDPS, bitwise-identical to the scalar
// loop (single rounding per element on both paths).
TEXT ·vaddFMA32(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ a+8(FP), R9
	MOVQ b+16(FP), R10
	MOVQ n+24(FP), CX

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-16, BX           // 2x-unrolled vector loop end (n & ^15)

valoop16:
	CMPQ DX, BX
	JGE  valoop8
	VMOVUPS (R9)(DX*4), Y0
	VADDPS  (R10)(DX*4), Y0, Y0
	VMOVUPS Y0, (R8)(DX*4)
	VMOVUPS 32(R9)(DX*4), Y1
	VADDPS  32(R10)(DX*4), Y1, Y1
	VMOVUPS Y1, 32(R8)(DX*4)
	ADDQ    $16, DX
	JMP     valoop16

valoop8:
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ DX, BX
	JGE  vatail
	VMOVUPS (R9)(DX*4), Y0
	VADDPS  (R10)(DX*4), Y0, Y0
	VMOVUPS Y0, (R8)(DX*4)
	ADDQ    $8, DX

vatail:
	CMPQ DX, CX
	JGE  vadone
	VMOVSS (R9)(DX*4), X0
	VADDSS (R10)(DX*4), X0, X0
	VMOVSS X0, (R8)(DX*4)
	INCQ   DX
	JMP    vatail

vadone:
	VZEROUPPER
	RET
