//go:build amd64

#include "textflag.h"

// func band2pAVX2(o0, o1, o2, o3, bp, bq *float64, av *[8]float64, n int)
//
// For each j: o_r[j] = (o_r[j] + av[r]*bp[j]) + av[4+r]*bq[j], r=0..3.
// VMULPD/VADDPD only — FMA would fuse the two roundings the scalar code
// performs and break bitwise equality with the Go kernels.
TEXT ·band2pAVX2(SB), NOSPLIT, $0-64
	MOVQ o0+0(FP), R8
	MOVQ o1+8(FP), R9
	MOVQ o2+16(FP), R10
	MOVQ o3+24(FP), R11
	MOVQ bp+32(FP), R12
	MOVQ bq+40(FP), R13
	MOVQ av+48(FP), AX
	MOVQ n+56(FP), CX

	// Broadcast the eight band coefficients once.
	VBROADCASTSD 0(AX), Y0  // av00 (row 0, column p)
	VBROADCASTSD 8(AX), Y1  // av01 (row 1, column p)
	VBROADCASTSD 16(AX), Y2 // av02 (row 2, column p)
	VBROADCASTSD 24(AX), Y3 // av03 (row 3, column p)
	VBROADCASTSD 32(AX), Y4 // av10 (row 0, column p+1)
	VBROADCASTSD 40(AX), Y5 // av11 (row 1, column p+1)
	VBROADCASTSD 48(AX), Y6 // av12 (row 2, column p+1)
	VBROADCASTSD 56(AX), Y7 // av13 (row 3, column p+1)

	XORQ DX, DX             // j
	MOVQ CX, BX
	ANDQ $-4, BX            // vector loop end (n & ^3)

loop4:
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R12)(DX*8), Y8 // bp[j:j+4]
	VMOVUPD (R13)(DX*8), Y9 // bq[j:j+4]

	// row 0: o = (o + av00*bp) + av10*bq
	VMOVUPD (R8)(DX*8), Y10
	VMULPD  Y8, Y0, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y4, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R8)(DX*8)

	// row 1
	VMOVUPD (R9)(DX*8), Y10
	VMULPD  Y8, Y1, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y5, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R9)(DX*8)

	// row 2
	VMOVUPD (R10)(DX*8), Y10
	VMULPD  Y8, Y2, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y6, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R10)(DX*8)

	// row 3
	VMOVUPD (R11)(DX*8), Y10
	VMULPD  Y8, Y3, Y11
	VADDPD  Y11, Y10, Y10
	VMULPD  Y9, Y7, Y11
	VADDPD  Y11, Y10, Y10
	VMOVUPD Y10, (R11)(DX*8)

	ADDQ $4, DX
	JMP  loop4

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R12)(DX*8), X8
	VMOVSD (R13)(DX*8), X9

	// row 0
	VMOVSD (R8)(DX*8), X10
	VMULSD X8, X0, X11
	VADDSD X11, X10, X10
	VMULSD X9, X4, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R8)(DX*8)

	// row 1
	VMOVSD (R9)(DX*8), X10
	VMULSD X8, X1, X11
	VADDSD X11, X10, X10
	VMULSD X9, X5, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R9)(DX*8)

	// row 2
	VMOVSD (R10)(DX*8), X10
	VMULSD X8, X2, X11
	VADDSD X11, X10, X10
	VMULSD X9, X6, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R10)(DX*8)

	// row 3
	VMOVSD (R11)(DX*8), X10
	VMULSD X8, X3, X11
	VADDSD X11, X10, X10
	VMULSD X9, X7, X11
	VADDSD X11, X10, X10
	VMOVSD X10, (R11)(DX*8)

	INCQ DX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpyAVX2(o, b *float64, s float64, n int)
//
// o[j] += s*b[j]; one multiply then one add per element, matching the
// scalar axpy's rounding exactly.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), R8
	MOVQ b+8(FP), R9
	MOVQ n+24(FP), CX
	VBROADCASTSD s+16(FP), Y0

	XORQ DX, DX
	MOVQ CX, BX
	ANDQ $-8, BX            // 2x-unrolled vector loop end (n & ^7)

loop8:
	CMPQ DX, BX
	JGE  loop4
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	VMOVUPD 32(R9)(DX*8), Y3
	VMULPD  Y3, Y0, Y3
	VMOVUPD 32(R8)(DX*8), Y4
	VADDPD  Y3, Y4, Y4
	VMOVUPD Y4, 32(R8)(DX*8)
	ADDQ    $8, DX
	JMP     loop8

loop4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ DX, BX
	JGE  tail
	VMOVUPD (R9)(DX*8), Y1
	VMULPD  Y1, Y0, Y1
	VMOVUPD (R8)(DX*8), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (R8)(DX*8)
	ADDQ    $4, DX

tail:
	CMPQ DX, CX
	JGE  done
	VMOVSD (R9)(DX*8), X1
	VMULSD X1, X0, X1
	VMOVSD (R8)(DX*8), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (R8)(DX*8)
	INCQ   DX
	JMP    tail

done:
	VZEROUPPER
	RET
