package bpe

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestLearnAndEncode(t *testing.T) {
	freq := map[string]int{
		"local.get": 100,
		"local.set": 60,
		"i32.const": 80,
		"i32.add":   70,
		";":         300,
		"<param>":   50,
		"12345678":  1, // rare: should be split into pieces
	}
	m := Learn(freq, 200)
	// Frequent tokens become single symbols.
	for _, w := range []string{"local.get", ";", "i32.add"} {
		if got := m.EncodeWord(w); len(got) != 1 {
			t.Errorf("EncodeWord(%q) = %v, want single symbol", w, got)
		}
	}
	if m.VocabSize() > 200 {
		t.Errorf("vocab size %d exceeds cap", m.VocabSize())
	}
}

func TestSmallVocabSplitsRareTokens(t *testing.T) {
	freq := map[string]int{}
	for i := 0; i < 50; i++ {
		freq["offset="+strings.Repeat("9", i%7+1)] = 1
	}
	freq["common"] = 1000
	m := Learn(freq, 40)
	rare := m.EncodeWord("offset=9999999")
	if len(rare) < 2 {
		t.Errorf("rare token not split: %v", rare)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	freq := map[string]int{"alpha": 5, "beta": 3, "gamma": 2, "alphabet": 1}
	m := Learn(freq, 30)
	seq := []string{"alpha", "beta", "alphabet", "gamma", "alpha"}
	enc := m.Encode(seq)
	dec := Decode(enc)
	if !reflect.DeepEqual(dec, seq) {
		t.Errorf("Decode(Encode(%v)) = %v via %v", seq, dec, enc)
	}
}

func TestDecodeUnknownSymbols(t *testing.T) {
	// Unterminated trailing symbol still yields a token.
	got := Decode([]string{"ab", "c"})
	if len(got) != 1 || got[0] != "abc" {
		t.Errorf("Decode = %v", got)
	}
	if got := Decode(nil); got != nil {
		t.Errorf("Decode(nil) = %v", got)
	}
}

func TestEncodeUnseenWord(t *testing.T) {
	m := Learn(map[string]int{"abc": 10}, 20)
	// A word never seen during learning still round-trips.
	got := Decode(m.EncodeWord("xyz"))
	if len(got) != 1 || got[0] != "xyz" {
		t.Errorf("unseen word round trip = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	freq := map[string]int{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w := ""
		for j := 0; j < r.Intn(8)+1; j++ {
			w += string(rune('a' + r.Intn(6)))
		}
		freq[w] += r.Intn(20) + 1
	}
	a := Learn(freq, 80)
	b := Learn(freq, 80)
	if !reflect.DeepEqual(a.Vocab(), b.Vocab()) || a.NumMerges() != b.NumMerges() {
		t.Error("Learn is not deterministic")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	freq := map[string]int{}
	r := rand.New(rand.NewSource(9))
	var words []string
	for i := 0; i < 100; i++ {
		w := ""
		for j := 0; j < r.Intn(10)+1; j++ {
			w += string(rune('a' + r.Intn(10)))
		}
		words = append(words, w)
		freq[w] += r.Intn(5) + 1
	}
	m := Learn(freq, 60)
	for i := 0; i < 200; i++ {
		n := r.Intn(6) + 1
		seq := make([]string, n)
		for j := range seq {
			seq[j] = words[r.Intn(len(words))]
		}
		if got := Decode(m.Encode(seq)); !reflect.DeepEqual(got, seq) {
			t.Fatalf("round trip failed: %v -> %v", seq, got)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	m := Learn(map[string]int{}, 10)
	if m.VocabSize() != 0 {
		t.Errorf("empty corpus vocab = %d", m.VocabSize())
	}
	if got := m.Encode(nil); got != nil {
		t.Errorf("Encode(nil) = %v", got)
	}
	if got := m.EncodeWord(""); got != nil {
		t.Errorf("EncodeWord(\"\") = %v", got)
	}
}
