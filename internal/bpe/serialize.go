package bpe

import (
	"encoding/gob"
	"fmt"
	"io"
)

type modelState struct {
	Merges [][2]string
	Vocab  []string
}

// Save writes the learned merges and vocabulary to w.
func (m *Model) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(modelState{Merges: m.merges, Vocab: m.Vocab()})
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("bpe: load: %w", err)
	}
	m := &Model{merges: st.Merges, rank: map[[2]string]int{}, vocab: map[string]bool{}}
	for i, pair := range st.Merges {
		m.rank[pair] = i
	}
	for _, s := range st.Vocab {
		m.vocab[s] = true
	}
	return m, nil
}
