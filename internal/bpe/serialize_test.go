package bpe

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randomToken draws a wasm-instruction-shaped token (the vocabulary the
// pipeline's BPE model actually sees: mnemonics, immediates, offsets).
func randomToken(r *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	const punct = ".=_0123456789"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		if r.Intn(3) == 0 {
			b[i] = punct[r.Intn(len(punct))]
		} else {
			b[i] = alpha[r.Intn(len(alpha))]
		}
	}
	return string(b)
}

// TestSerializeRoundTripProperty: for randomized vocabularies,
// Save→Load→Save must be a byte-level identity, the loaded model must
// encode exactly like the original, and Decode must invert Encode. The
// parallel pipeline's determinism gate compares vocabularies across
// runs, so serialization itself has to be canonical.
func TestSerializeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		freq := map[string]int{}
		for i := 0; i < 5+r.Intn(60); i++ {
			freq[randomToken(r)] += 1 + r.Intn(50)
		}
		m := Learn(freq, 20+r.Intn(300))

		var b1 bytes.Buffer
		if err := m.Save(&b1); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var b2 bytes.Buffer
		if err := loaded.Save(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("trial %d: encode→decode→encode not identity (%d vs %d bytes)", trial, b1.Len(), b2.Len())
		}
		if loaded.VocabSize() != m.VocabSize() || loaded.NumMerges() != m.NumMerges() {
			t.Fatalf("trial %d: loaded model shape differs", trial)
		}

		// The loaded model must tokenize identically, and decoding must
		// restore the original token sequence — both on in-vocabulary
		// tokens and on never-seen ones.
		var tokens []string
		for w := range freq {
			tokens = append(tokens, w)
			if len(tokens) == 8 {
				break
			}
		}
		for i := 0; i < 4; i++ {
			tokens = append(tokens, randomToken(r))
		}
		e1, e2 := m.Encode(tokens), loaded.Encode(tokens)
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("trial %d: loaded model encodes differently:\n%v\n%v", trial, e1, e2)
		}
		if got := Decode(e1); !reflect.DeepEqual(got, tokens) {
			t.Fatalf("trial %d: Decode(Encode(x)) != x:\n%v\n%v", trial, got, tokens)
		}
	}
}

// TestLoadRejectsGarbage: corrupt streams must error, not panic.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load accepted an empty stream")
	}
}
