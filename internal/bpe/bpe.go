// Package bpe implements byte-pair-encoding subword tokenization
// (Sennrich et al., ACL 2016), standing in for SentencePiece in the
// paper's pipeline (Section 4.1): the raw WebAssembly token vocabulary is
// dominated by a long tail of numbers (memory offsets, constants), so
// infrequent tokens are broken into subwords drawn from a small learned
// vocabulary, trading slightly longer sequences for a much smaller
// embedding matrix.
package bpe

import (
	"sort"
	"strings"
	"unicode/utf8"
)

// endOfWord marks word-final symbols so decoding can restore token
// boundaries.
const endOfWord = "</w>"

// Model is a learned subword model.
type Model struct {
	merges [][2]string
	rank   map[[2]string]int
	vocab  map[string]bool
}

// Learn builds a subword model from word frequencies. vocabSize bounds the
// number of distinct output symbols; learning stops when the vocabulary is
// full or no pair occurs at least twice.
func Learn(wordFreq map[string]int, vocabSize int) *Model {
	// Represent each word as its symbol sequence, final symbol marked.
	type entry struct {
		syms []string
		n    int
	}
	entries := make([]entry, 0, len(wordFreq))
	// Deterministic iteration order.
	words := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		if w != "" {
			words = append(words, w)
		}
	}
	sort.Strings(words)
	vocab := map[string]bool{}
	for _, w := range words {
		syms := split(w)
		for _, s := range syms {
			vocab[s] = true
		}
		entries = append(entries, entry{syms: syms, n: wordFreq[w]})
	}

	m := &Model{rank: map[[2]string]int{}, vocab: vocab}
	for len(m.vocab) < vocabSize {
		// Count adjacent pairs.
		pairs := map[[2]string]int{}
		for _, e := range entries {
			for i := 0; i+1 < len(e.syms); i++ {
				pairs[[2]string{e.syms[i], e.syms[i+1]}] += e.n
			}
		}
		best, bestN := [2]string{}, 1
		// Deterministic tie-break: highest count, then lexicographic.
		keys := make([][2]string, 0, len(pairs))
		for p := range pairs {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, p := range keys {
			if pairs[p] > bestN {
				best, bestN = p, pairs[p]
			}
		}
		if bestN < 2 {
			break
		}
		merged := best[0] + best[1]
		m.rank[best] = len(m.merges)
		m.merges = append(m.merges, best)
		m.vocab[merged] = true
		for i := range entries {
			entries[i].syms = applyMerge(entries[i].syms, best, merged)
		}
	}
	return m
}

// split breaks a word into initial symbols (runes, last one marked).
// Symbols are sliced from the word rather than re-encoded so that bytes
// that are not valid UTF-8 survive a round trip instead of collapsing
// to U+FFFD.
func split(w string) []string {
	var syms []string
	for i := 0; i < len(w); {
		_, size := utf8.DecodeRuneInString(w[i:])
		syms = append(syms, w[i:i+size])
		i += size
	}
	syms[len(syms)-1] += endOfWord
	return syms
}

func applyMerge(syms []string, pair [2]string, merged string) []string {
	out := syms[:0]
	for i := 0; i < len(syms); i++ {
		if i+1 < len(syms) && syms[i] == pair[0] && syms[i+1] == pair[1] {
			out = append(out, merged)
			i++
		} else {
			out = append(out, syms[i])
		}
	}
	return out
}

// EncodeWord splits one token into learned subword symbols.
func (m *Model) EncodeWord(w string) []string {
	if w == "" {
		return nil
	}
	syms := split(w)
	// Greedily apply merges in learned order until none applies.
	for {
		bestRank, bestIdx := -1, -1
		for i := 0; i+1 < len(syms); i++ {
			if r, ok := m.rank[[2]string{syms[i], syms[i+1]}]; ok && (bestRank < 0 || r < bestRank) {
				bestRank, bestIdx = r, i
			}
		}
		if bestIdx < 0 {
			return syms
		}
		merged := syms[bestIdx] + syms[bestIdx+1]
		syms = append(syms[:bestIdx], append([]string{merged}, syms[bestIdx+2:]...)...)
	}
}

// Encode splits a token sequence into subword symbols.
func (m *Model) Encode(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		out = append(out, m.EncodeWord(t)...)
	}
	return out
}

// Decode reassembles subword symbols into the original token sequence.
// Symbols not ending in the end-of-word marker glue onto the next symbol.
func Decode(subtokens []string) []string {
	var out []string
	var cur strings.Builder
	for _, s := range subtokens {
		if trimmed, ok := strings.CutSuffix(s, endOfWord); ok {
			cur.WriteString(trimmed)
			out = append(out, cur.String())
			cur.Reset()
		} else {
			cur.WriteString(s)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// VocabSize returns the number of distinct symbols the model can emit.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Vocab returns the sorted symbol vocabulary.
func (m *Model) Vocab() []string {
	out := make([]string, 0, len(m.vocab))
	for s := range m.vocab {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NumMerges returns the number of learned merges.
func (m *Model) NumMerges() int { return len(m.merges) }
