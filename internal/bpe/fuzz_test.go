// Native fuzz target for the BPE subword codec that feeds every token
// the model ever sees (Section 4.1). Run with:
//
//	go test -fuzz=FuzzEncodeDecode ./internal/bpe
package bpe

import (
	"reflect"
	"strings"
	"testing"
)

// fuzzSeedCorpora are space-separated token streams shaped like the
// dataset's real inputs: wasm mnemonics, immediates with a numeric long
// tail, and type-language target tokens.
var fuzzSeedCorpora = []string{
	"local.get_0 i32.load i32.const_8 i32.add i32.store local.get_0 end",
	"f64.mul f64.add local.get_1 f64.load offset=16 f64.store offset=24",
	"<begin> ptr struct_member_int32_t struct_member_float <end>",
	"call_12 call_128 call_1280 i32.const_-1 i32.const_4096 br_if_0",
	"a aa aaa aaaa ab abc abcd",
	"漢字 漢 字 mixed_漢字_ascii",
}

// FuzzEncodeDecode checks the codec's invariants on arbitrary token
// streams, learning a model from the stream itself so every merge path
// the input can trigger is exercised:
//
//  1. Round trip: Decode(Encode(tokens)) == tokens. Tokens containing
//     the literal end-of-word marker "</w>" are excluded — a marker in
//     the middle of a token is indistinguishable from a word boundary
//     after encoding, a known limitation that cannot occur in practice
//     because wasm mnemonics and type tokens never contain it.
//  2. Closure: every subword Encode emits is in the learned vocabulary,
//     since the model was learned on the same stream.
//  3. Determinism: encoding the same stream twice is identical.
//  4. Length: marker-stripped subwords concatenate back to each input
//     token, so encoding never gains or loses characters.
func FuzzEncodeDecode(f *testing.F) {
	for _, c := range fuzzSeedCorpora {
		f.Add(c, 40)
	}
	f.Fuzz(func(t *testing.T, corpus string, vocabSize int) {
		var tokens []string
		for _, tok := range strings.Fields(corpus) {
			if strings.Contains(tok, endOfWord) {
				continue // documented round-trip limitation
			}
			tokens = append(tokens, tok)
		}
		if len(tokens) == 0 {
			t.Skip("no usable tokens")
		}
		if vocabSize < 0 {
			vocabSize = -vocabSize
		}
		vocabSize %= 512

		freq := map[string]int{}
		for _, tok := range tokens {
			freq[tok]++
		}
		m := Learn(freq, vocabSize)

		enc := m.Encode(tokens)
		if dec := Decode(enc); !reflect.DeepEqual(dec, tokens) {
			t.Fatalf("round trip broken:\n tokens %q\n enc    %q\n dec    %q", tokens, enc, dec)
		}
		if enc2 := m.Encode(tokens); !reflect.DeepEqual(enc2, enc) {
			t.Fatalf("encoding not deterministic: %q vs %q", enc, enc2)
		}
		inVocab := map[string]bool{}
		for _, s := range m.Vocab() {
			inVocab[s] = true
		}
		for _, s := range enc {
			if !inVocab[s] {
				t.Fatalf("encoded symbol %q not in learned vocabulary", s)
			}
		}
		// Per-word length conservation: subwords of one word concatenate,
		// marker stripped, back to the word.
		for _, tok := range tokens {
			var b strings.Builder
			for _, s := range m.EncodeWord(tok) {
				b.WriteString(strings.TrimSuffix(s, endOfWord))
			}
			if b.String() != tok {
				t.Fatalf("EncodeWord(%q) concatenates to %q", tok, b.String())
			}
		}
	})
}
