package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/extract"
	"repro/internal/metrics"
	"repro/internal/split"
	"repro/internal/typelang"
)

// The parallel dataset pipeline. The paper's corpus (4,081 packages,
// 300,905 object files) makes corpus construction, not modeling, the
// throughput bottleneck; every per-package stage here is embarrassingly
// parallel, so packages fan out over a bounded worker pool in two stages:
//
//	stage 1 (parallel): generate package → compile each file → dedup key
//	barrier: all dedup keys observed
//	stage 2 (parallel): resolve dedup verdicts → extract kept binaries
//	merge in canonical package order → cap → names → split
//
// Determinism: every package's random stream is seeded from
// (Corpus.Seed, pkgIdx) alone (corpus.GeneratePackage), dedup keeps the
// canonical-order-minimal member of each equivalence class regardless of
// observation order (dedup.Index), and results are merged by package
// index — so worker count and goroutine scheduling never change a byte
// of the output. TestPipelineDeterminism enforces -j 1 ≡ -j N.

// PipelineMetrics instruments the dataset build with the same
// counter/histogram primitives the prediction server exports; register
// them on the server's Registry to surface build progress on /metrics.
// A nil *PipelineMetrics disables instrumentation.
type PipelineMetrics struct {
	PackagesGenerated *metrics.Counter
	BinariesCompiled  *metrics.Counter
	BinariesKept      *metrics.Counter
	DuplicatesDropped *metrics.Counter
	SamplesExtracted  *metrics.Counter
	GenerateSeconds   *metrics.Histogram
	CompileSeconds    *metrics.Histogram
	ExtractSeconds    *metrics.Histogram
}

// NewPipelineMetrics registers the pipeline's per-stage counters and
// latency histograms on r.
func NewPipelineMetrics(r *metrics.Registry) *PipelineMetrics {
	return &PipelineMetrics{
		PackagesGenerated: r.NewCounter("pipeline_packages_generated_total", "Synthetic packages generated."),
		BinariesCompiled:  r.NewCounter("pipeline_binaries_compiled_total", "Object files compiled."),
		BinariesKept:      r.NewCounter("pipeline_binaries_kept_total", "Binaries surviving deduplication."),
		DuplicatesDropped: r.NewCounter("pipeline_duplicates_dropped_total", "Exact and near duplicates removed."),
		SamplesExtracted:  r.NewCounter("pipeline_samples_extracted_total", "Samples extracted before per-package capping."),
		GenerateSeconds:   r.NewHistogram("pipeline_generate_seconds", "Per-package source generation latency.", nil),
		CompileSeconds:    r.NewHistogram("pipeline_compile_seconds", "Per-file compilation latency.", nil),
		ExtractSeconds:    r.NewHistogram("pipeline_extract_seconds", "Per-binary sample extraction latency.", nil),
	}
}

// discardPipelineMetrics returns an instance whose metrics are not
// registered anywhere, so uninstrumented builds skip the nil checks.
func discardPipelineMetrics() *PipelineMetrics {
	return &PipelineMetrics{
		PackagesGenerated: &metrics.Counter{},
		BinariesCompiled:  &metrics.Counter{},
		BinariesKept:      &metrics.Counter{},
		DuplicatesDropped: &metrics.Counter{},
		SamplesExtracted:  &metrics.Counter{},
		GenerateSeconds:   metrics.NewHistogram(nil),
		CompileSeconds:    metrics.NewHistogram(nil),
		ExtractSeconds:    metrics.NewHistogram(nil),
	}
}

// runWorkers fans indices 0..n-1 out over at most par workers and waits
// for all of them.
func runWorkers(par, n int, f func(int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// binUnit is one compiled object file awaiting its dedup verdict.
type binUnit struct {
	bin   dedup.Binary
	key   dedup.Key
	order uint64
}

// pkgUnit carries one package through the pipeline stages.
type pkgUnit struct {
	pkg     corpus.Package
	bins    []binUnit
	samples []extract.Sample
	stats   dedup.Stats
	err     error
}

// orderOf embeds the canonical corpus order (package-major, file-minor)
// into a single comparable integer for the dedup index.
func orderOf(pkgIdx, fileIdx int) uint64 { return uint64(pkgIdx)<<20 | uint64(fileIdx) }

// BuildDatasetInstrumented is BuildDataset with per-stage metrics (pm may
// be nil). cfg.Parallelism bounds the worker pool; 0 means
// runtime.NumCPU().
func BuildDatasetInstrumented(cfg Config, progress func(string), pm *PipelineMetrics) (*Dataset, error) {
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if pm == nil {
		pm = discardPipelineMetrics()
	}

	n := cfg.Corpus.Packages
	lib := corpus.NewLibrary(cfg.Corpus.Seed)
	units := make([]pkgUnit, n)
	index := dedup.NewIndex()

	// Stage 1: generate + compile + dedup-key, fanned out over packages.
	runWorkers(par, n, func(idx int) {
		u := &units[idx]
		start := time.Now()
		u.pkg = corpus.GeneratePackage(cfg.Corpus, lib, idx)
		pm.GenerateSeconds.ObserveSince(start)
		pm.PackagesGenerated.Inc()
		for fi, f := range u.pkg.Files {
			cstart := time.Now()
			obj, err := cc.Compile(f.Source, cc.Options{FileName: f.Name, Debug: true})
			if err != nil {
				u.err = fmt.Errorf("core: compile %s: %w", f.Name, err)
				return
			}
			key, err := dedup.KeyOf(obj.Binary)
			if err != nil {
				u.err = fmt.Errorf("core: dedup key %s: %w", f.Name, err)
				return
			}
			pm.CompileSeconds.ObserveSince(cstart)
			pm.BinariesCompiled.Inc()
			order := orderOf(idx, fi)
			index.Observe(key, order)
			u.bins = append(u.bins, binUnit{
				bin:   dedup.Binary{Pkg: u.pkg.Name, Name: f.Name, Data: obj.Binary},
				key:   key,
				order: order,
			})
		}
	})
	// Lowest package index wins the error report, deterministically.
	nbins := 0
	for i := range units {
		if units[i].err != nil {
			return nil, units[i].err
		}
		nbins += len(units[i].bins)
	}
	say("generated %d packages", n)
	say("compiled %d object files", nbins)

	// Stage 2: every dedup key is observed, so verdicts are final;
	// extract samples from kept binaries, fanned out over packages.
	runWorkers(par, n, func(idx int) {
		u := &units[idx]
		for _, b := range u.bins {
			v := index.Resolve(b.key, b.order, dedup.LevelBinary)
			u.stats.Count(b.key, v)
			if v != dedup.Keep {
				pm.DuplicatesDropped.Inc()
				continue
			}
			pm.BinariesKept.Inc()
			estart := time.Now()
			s, err := extract.FromBinary(b.bin.Pkg, b.bin.Name, b.bin.Data, cfg.Extract)
			if err != nil {
				u.err = err
				return
			}
			pm.ExtractSeconds.ObserveSince(estart)
			pm.SamplesExtracted.Add(int64(len(s)))
			u.samples = append(u.samples, s...)
		}
	})

	// Merge in canonical package order: the sample sequence and stats are
	// exactly what the sequential pass over the flattened corpus produced.
	var stats dedup.Stats
	var samples []extract.Sample
	pkgNames := make([]string, 0, n)
	for i := range units {
		if units[i].err != nil {
			return nil, units[i].err
		}
		stats.Merge(units[i].stats)
		samples = append(samples, units[i].samples...)
		pkgNames = append(pkgNames, units[i].pkg.Name)
	}
	say("%s", stats)

	before := len(samples)
	samples = split.CapPerPackage(samples, func(s extract.Sample) string { return s.Pkg })
	say("extracted %d samples (%d after per-package cap)", before, len(samples))

	// Common-name vocabulary over the whole dataset (Section 3.6).
	names := typelang.NewNameStats()
	for _, s := range samples {
		names.Add(s.Pkg, s.Master)
	}
	common := names.Common(cfg.NameThreshold)
	say("extracted %d common type names from %d packages", len(common), names.NumPackages())

	fr := cfg.Split
	if fr.Valid == 0 && fr.Test == 0 {
		fr = split.PaperFractions()
	}
	parts := split.ByPackage(pkgNames, cfg.SplitSeed, fr)

	return &Dataset{
		Cfg:              cfg,
		Samples:          samples,
		Parts:            parts,
		NameStats:        names,
		CommonNames:      common,
		CommonFilter:     typelang.FilterFunc(common),
		DedupStats:       stats,
		Packages:         n,
		SamplesBeforeCap: before,
	}, nil
}
