package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cc"
	"repro/internal/wasm"
)

// trainTinyPredictor trains the smallest useful predictor for concurrency
// tests, exercising the shared TrainPredictor helper.
func trainTinyPredictor(t *testing.T) *Predictor {
	t.Helper()
	cfg := testConfig()
	cfg.Corpus.Packages = 16
	cfg.Model.Epochs = 1
	p, err := TrainPredictor(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Param == nil || p.Return == nil {
		t.Fatal("TrainPredictor returned incomplete predictor")
	}
	return p
}

// TestPredictorConcurrent hammers one Predictor from many goroutines over
// a shared decoded module. The predict path must be read-only over model
// state (run with -race), and beam search must stay deterministic: every
// goroutine gets the result serial execution produces.
func TestPredictorConcurrent(t *testing.T) {
	p := trainTinyPredictor(t)
	obj, err := cc.Compile(`
double first(double *xs, int n) {
	if (xs != NULL && n > 0) { return xs[0]; }
	return 0.0;
}
int length(char *s) {
	int n = 0;
	while (s[n] != 0) { n = n + 1; }
	return n;
}
`, cc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	bin, _, err := wasm.Encode(obj.Module)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeStripped(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Custom(".debug_info"); got != nil {
		t.Fatal("DecodeStripped left DWARF in the module")
	}

	// Serial ground truth per function.
	want := make([]map[string][]TypePrediction, len(m.Funcs))
	for fi := range m.Funcs {
		w, err := p.PredictModule(m, fi, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[fi] = w
	}

	const goroutines = 32
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fi := (g + i) % len(m.Funcs)
				got, err := p.PredictModule(m, fi, 3)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[fi]) {
					t.Errorf("goroutine %d: non-deterministic prediction for func %d", g, fi)
					return
				}
				// Also exercise the decode-from-bytes entry point.
				if i == 0 {
					if _, err := p.PredictBinary(bin, fi, 3); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
