package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/typelang"
)

// TrainPredictor builds the dataset for cfg and trains the two L_SW
// production models — parameter and return prediction — returning the
// Predictor artifact that `snowwhite train`, `snowwhite predict`, and the
// serving layer all share. progress (may be nil) receives build and
// training logs.
func TrainPredictor(cfg Config, progress func(string)) (*Predictor, error) {
	return TrainPredictorCheckpointed(cfg, "", progress)
}

// trainCheckpointState is the on-disk representation of an interrupted
// (or finished) TrainPredictorCheckpointed run: the serialized Trained
// artifacts of every completed stage, plus the per-epoch seq2seq
// checkpoint of the stage that was training when the process died.
type trainCheckpointState struct {
	Done        map[string][]byte // stage name → Trained bytes
	Pending     string            // stage currently training, "" if none
	PendingCkpt []byte            // its last completed epoch's checkpoint
}

// predictorStages are the training stages in execution order.
var predictorStages = []struct {
	name string
	task Task
}{
	{"param", Task{Variant: typelang.VariantLSW}},
	{"return", Task{Variant: typelang.VariantLSW, Return: true}},
}

// checkpointInterrupt is a test hook: when non-nil it runs after every
// checkpoint write, and a returned error aborts training exactly as a
// kill at that moment would.
var checkpointInterrupt func(stage string, ckpt []byte) error

// TrainPredictorCheckpointed is TrainPredictor with kill-tolerance: when
// ckptPath is non-empty, a training-state file is atomically rewritten
// after every epoch, and a rerun pointed at the same path resumes from
// the last completed epoch instead of starting over. Dataset
// construction, epoch scheduling, and per-epoch randomness are all
// deterministic given cfg, so the resumed run converges to the same
// model an uninterrupted run produces. The caller should delete the file
// once the returned predictor has been persisted.
func TrainPredictorCheckpointed(cfg Config, ckptPath string, progress func(string)) (*Predictor, error) {
	log := progress
	if log == nil {
		log = func(string) {}
	}
	state := &trainCheckpointState{Done: map[string][]byte{}}
	if ckptPath != "" {
		if prev, err := loadTrainCheckpoint(ckptPath); err != nil {
			return nil, err
		} else if prev != nil {
			state = prev
			log(fmt.Sprintf("resuming from checkpoint %s (%d stages done)", ckptPath, len(state.Done)))
		}
	}

	d, err := BuildDataset(cfg, progress)
	if err != nil {
		return nil, err
	}

	trained := map[string]*Trained{}
	for _, stage := range predictorStages {
		if b, ok := state.Done[stage.name]; ok {
			tr, err := LoadTrained(bytes.NewReader(b))
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint stage %s: %w", stage.name, err)
			}
			log(fmt.Sprintf("%s model restored from checkpoint", stage.name))
			trained[stage.name] = tr
			continue
		}
		log(fmt.Sprintf("training %s model", stage.name))
		var opts *TrainTaskOptions
		if ckptPath != "" {
			opts = &TrainTaskOptions{
				Checkpoint: func(ckpt []byte) error {
					state.Pending = stage.name
					state.PendingCkpt = ckpt
					if err := saveTrainCheckpoint(ckptPath, state); err != nil {
						return err
					}
					if checkpointInterrupt != nil {
						return checkpointInterrupt(stage.name, ckpt)
					}
					return nil
				},
			}
			if state.Pending == stage.name && len(state.PendingCkpt) > 0 {
				opts.Resume = state.PendingCkpt
			}
		}
		tr, err := d.TrainTask(stage.task, opts, progress)
		if err != nil {
			return nil, err
		}
		trained[stage.name] = tr
		if ckptPath != "" {
			var buf bytes.Buffer
			if err := tr.Save(&buf); err != nil {
				return nil, err
			}
			state.Done[stage.name] = buf.Bytes()
			state.Pending = ""
			state.PendingCkpt = nil
			if err := saveTrainCheckpoint(ckptPath, state); err != nil {
				return nil, err
			}
		}
	}
	return &Predictor{Param: trained["param"], Return: trained["return"], Opts: cfg.Extract}, nil
}

// loadTrainCheckpoint reads a training-state file; a missing file is not
// an error (fresh run), a corrupt one is.
func loadTrainCheckpoint(path string) (*trainCheckpointState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st trainCheckpointState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load train checkpoint %s: %w", path, err)
	}
	if st.Done == nil {
		st.Done = map[string][]byte{}
	}
	return &st, nil
}

// saveTrainCheckpoint writes the state file atomically (temp file +
// rename) so a kill mid-write leaves the previous checkpoint intact.
func saveTrainCheckpoint(path string, st *trainCheckpointState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(st); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
