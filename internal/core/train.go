package core

import "repro/internal/typelang"

// TrainPredictor builds the dataset for cfg and trains the two L_SW
// production models — parameter and return prediction — returning the
// Predictor artifact that `snowwhite train`, `snowwhite predict`, and the
// serving layer all share. progress (may be nil) receives build and
// training logs.
func TrainPredictor(cfg Config, progress func(string)) (*Predictor, error) {
	log := progress
	if log == nil {
		log = func(string) {}
	}
	d, err := BuildDataset(cfg, progress)
	if err != nil {
		return nil, err
	}
	log("training parameter model")
	_, paramModel := d.RunTask(Task{Variant: typelang.VariantLSW}, progress)
	log("training return model")
	_, retModel := d.RunTask(Task{Variant: typelang.VariantLSW, Return: true}, progress)
	return &Predictor{Param: paramModel, Return: retModel, Opts: cfg.Extract}, nil
}
