package core

import (
	"repro/internal/metrics"
	"repro/internal/seq2seq"
)

// TrainMetrics instruments sharded model training with the same
// counter/histogram primitives as the dataset pipeline and evaluation;
// register them on the server's Registry to surface training progress
// on /metrics. A nil *TrainMetrics disables instrumentation.
type TrainMetrics struct {
	Batches *metrics.Counter // optimizer steps (one per minibatch)
	Shards  *metrics.Counter // forward+backward shard passes
	Tokens  *metrics.Counter // scored (non-PAD) target tokens
	Epochs  *metrics.Counter // completed epochs across all stages
	// ShardSeconds is the parallel forward+backward phase of each step;
	// MergeSeconds is its serial tail (ordered gradient reduction plus
	// the optimizer update) — the Amdahl split of the training loop.
	ShardSeconds *metrics.Histogram
	MergeSeconds *metrics.Histogram
	EpochSeconds *metrics.Histogram
}

// NewTrainMetrics registers the training counters and latency
// histograms on r.
func NewTrainMetrics(r *metrics.Registry) *TrainMetrics {
	return &TrainMetrics{
		Batches:      r.NewCounter("train_batches_total", "Optimizer steps completed."),
		Shards:       r.NewCounter("train_shards_total", "Forward+backward shard passes."),
		Tokens:       r.NewCounter("train_tokens_total", "Scored target tokens."),
		Epochs:       r.NewCounter("train_epochs_total", "Completed training epochs."),
		ShardSeconds: r.NewHistogram("train_shard_seconds", "Per-step parallel forward+backward wall time.", nil),
		MergeSeconds: r.NewHistogram("train_merge_seconds", "Per-step gradient reduction plus optimizer wall time.", nil),
		EpochSeconds: r.NewHistogram("train_epoch_seconds", "Per-epoch wall time including validation.", nil),
	}
}

// observer adapts the metrics to the seq2seq training callbacks.
// Callbacks arrive on the training goroutine between steps, and the
// primitives are atomic anyway, so the adapter is concurrency-safe.
func (tm *TrainMetrics) observer() seq2seq.TrainObserver {
	return seq2seq.TrainObserver{
		Step: func(e seq2seq.TrainEvent) {
			tm.Batches.Inc()
			tm.Shards.Add(int64(e.Shards))
			tm.Tokens.Add(int64(e.Tokens))
			tm.ShardSeconds.Observe(e.ShardSeconds)
			tm.MergeSeconds.Observe(e.MergeSeconds)
		},
		Epoch: func(e seq2seq.TrainEpochEvent) {
			tm.Epochs.Inc()
			tm.EpochSeconds.Observe(e.Seconds)
		},
	}
}
