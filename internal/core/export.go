package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/split"
	"repro/internal/typelang"
)

// SampleRecord is the JSONL export format of one dataset sample, in the
// spirit of the dataset the paper shares alongside the code: everything a
// downstream user needs to train their own model without re-running the
// compilation pipeline.
type SampleRecord struct {
	Package string   `json:"package"`
	Binary  string   `json:"binary"`
	Func    string   `json:"func"`
	Element string   `json:"element"` // "param0".."paramN" or "return"
	LowType string   `json:"low_type"`
	Input   []string `json:"input"`
	// Types maps each language variant to the sample's label tokens.
	Types map[string][]string `json:"types"`
	Split string              `json:"split"`
}

// ExportJSONL writes the dataset as one JSON object per line.
func (d *Dataset) ExportJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range d.Samples {
		rec := SampleRecord{
			Package: s.Pkg,
			Binary:  s.Binary,
			Func:    s.Func,
			Element: s.Elem.String(),
			LowType: s.LowType,
			Input:   s.Input,
			Types:   map[string][]string{},
			Split:   d.Part(s).String(),
		}
		for _, v := range typelang.Variants() {
			rec.Types[v.String()] = v.Apply(s.Master, d.CommonFilter)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportJSONL reads records written by ExportJSONL. It returns the raw
// records; label/task realization is up to the caller.
func ImportJSONL(r io.Reader) ([]SampleRecord, error) {
	dec := json.NewDecoder(r)
	var out []SampleRecord
	for dec.More() {
		var rec SampleRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("core: import jsonl: %w", err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// PairsFromRecords converts imported records into training pairs for one
// variant/element/split selection, mirroring Dataset.realize for external
// datasets.
func PairsFromRecords(recs []SampleRecord, variant typelang.Variant, isReturn bool, part split.Part) (srcs [][]string, tgts [][]string) {
	wantElem := "return"
	for _, rec := range recs {
		if (rec.Element == wantElem) != isReturn {
			continue
		}
		if rec.Split != part.String() {
			continue
		}
		tgt, ok := rec.Types[variant.String()]
		if !ok {
			continue
		}
		srcs = append(srcs, rec.Input)
		tgts = append(tgts, tgt)
	}
	return
}
