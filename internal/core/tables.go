package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/typelang"
)

// Table1 renders the type-language feature matrix (Table 1 of the paper).
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Type languages of learning-based binary type prediction\n")
	fmt.Fprintf(&sb, "%-12s %-5s %-10s %-5s %-5s %-5s %-8s %-6s %-6s %-6s %-9s %-6s %-16s %-6s %-8s\n",
		"Approach", "|L|", "Structure", "int", "bool", "sign", "size", "float", "cmplx", "array", "pointer", "const", "pointee", "names", "lang")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, r := range typelang.FeatureMatrix() {
		fmt.Fprintf(&sb, "%-12s %-5s %-10s %-5s %-5s %-5s %-8s %-6s %-6s %-6s %-9s %-6s %-16s %-6s %-8s\n",
			r.Approach, r.NumTypes, r.Structure, yn(r.IntChar), yn(r.Bool), yn(r.IntSign),
			r.PrimSize, yn(r.Float), yn(r.Complex), yn(r.Array), yn(r.Pointer), yn(r.Const),
			r.PointeeType, r.Names, r.LangSpecific)
	}
	return sb.String()
}

// Distribution computes the realized type distribution of the dataset
// under a variant, split by parameters and returns.
func (d *Dataset) Distribution(v typelang.Variant) (params, returns, all *metrics.Distribution) {
	params, returns, all = metrics.NewDistribution(), metrics.NewDistribution(), metrics.NewDistribution()
	for _, s := range d.Samples {
		key := LabelString(v.Apply(s.Master, d.CommonFilter))
		all.Add(key)
		if s.Elem.IsReturn() {
			returns.Add(key)
		} else {
			params.Add(key)
		}
	}
	return
}

// Table2 renders the most common L_SW types in the dataset (Table 2).
func (d *Dataset) Table2(topK int) string {
	_, _, all := d.Distribution(typelang.VariantLSW)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Most common types in Lsw (%d samples, %d unique types)\n", all.Total(), all.Unique())
	fmt.Fprintf(&sb, "%-4s %-45s %10s %8s\n", "Rank", "Type", "Count", "% Total")
	for i, ts := range all.Top(topK) {
		fmt.Fprintf(&sb, "%-4d %-45s %10d %7.1f%%\n", i+1, ts.Type, ts.Count, ts.Share*100)
	}
	return sb.String()
}

// Table3 renders the most common extracted type names (Table 3).
func (d *Dataset) Table3(topK int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: Most common extracted type names (%d common names, %d packages)\n",
		len(d.CommonNames), d.NameStats.NumPackages())
	fmt.Fprintf(&sb, "%-28s %12s %10s\n", "Name", "Samples", "Packages")
	rows := d.CommonNames
	if len(rows) > topK {
		rows = rows[:topK]
	}
	for _, n := range rows {
		fmt.Fprintf(&sb, "%-28s %12d %9.1f%%\n", n.Name, n.SampleCount, n.PackageShare*100)
	}
	return sb.String()
}

// Table4Row summarizes one type language's realized distribution.
type Table4Row struct {
	Language    string
	Unique      int
	NormEntropy float64
	TopParam    metrics.TypeShare
	TopReturn   metrics.TypeShare
}

// Table4 computes the distribution comparison across language variants
// (Table 4).
func (d *Dataset) Table4() []Table4Row {
	var rows []Table4Row
	for _, v := range typelang.Variants() {
		params, returns, all := d.Distribution(v)
		row := Table4Row{
			Language:    v.String(),
			Unique:      all.Unique(),
			NormEntropy: all.NormalizedEntropy(),
		}
		if top := params.Top(1); len(top) > 0 {
			row.TopParam = top[0]
		}
		if top := returns.Top(1); len(top) > 0 {
			row.TopReturn = top[0]
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable4 renders Table 4 rows.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Type distributions compared\n")
	fmt.Fprintf(&sb, "%-18s %8s %8s   %-38s %-38s\n", "Language", "|L|", "H/Hmax", "Most frequent parameter", "Most frequent return")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8d %8.2f   %-30s %5.1f%%  %-30s %5.1f%%\n",
			r.Language, r.Unique, r.NormEntropy,
			clip(r.TopParam.Type, 30), r.TopParam.Share*100,
			clip(r.TopReturn.Type, 30), r.TopReturn.Share*100)
	}
	return sb.String()
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

// Table5Tasks lists the ten prediction tasks of Table 5 in column order.
func Table5Tasks() []Task {
	var tasks []Task
	for _, ret := range []bool{false, true} {
		tasks = append(tasks,
			Task{Variant: typelang.VariantLSW, Return: ret},
			Task{Variant: typelang.VariantAllNames, Return: ret},
			Task{Variant: typelang.VariantSimplified, Return: ret},
			Task{Variant: typelang.VariantEklavya, Return: ret},
			Task{Variant: typelang.VariantLSW, Return: ret, AblateLowType: true},
		)
	}
	return tasks
}

// FormatTable5 renders task results like Table 5.
func FormatTable5(results []*TaskResult) string {
	var sb strings.Builder
	sb.WriteString("Table 5: Model accuracy vs conditional-probability baseline\n")
	fmt.Fprintf(&sb, "%-42s %8s %8s %8s   %8s %8s %8s %8s\n",
		"Task", "Top-1", "Top-5", "TPS", "B.Top-1", "B.Top-5", "B.TPS", "TestN")
	for _, r := range results {
		b1, b5, bt := "N/A", "N/A", "N/A"
		if r.HasBaseline {
			b1 = fmt.Sprintf("%7.1f%%", r.Baseline.Top1()*100)
			b5 = fmt.Sprintf("%7.1f%%", r.Baseline.Top5()*100)
			bt = fmt.Sprintf("%8.2f", r.Baseline.TPS())
		}
		fmt.Fprintf(&sb, "%-42s %7.1f%% %7.1f%% %8.2f   %8s %8s %8s %8d\n",
			r.Task.Name(), r.Model.Top1()*100, r.Model.Top5()*100, r.Model.TPS(),
			b1, b5, bt, r.TestN)
	}
	return sb.String()
}

// FormatFigure4 renders the accuracy-by-nesting-depth series of Figure 4.
func FormatFigure4(param, ret *TaskResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: Prediction accuracy of Lsw by type nesting depth\n")
	render := func(name string, r *TaskResult) {
		fmt.Fprintf(&sb, "%s types:\n", name)
		fmt.Fprintf(&sb, "  %-6s %8s %8s %8s\n", "Depth", "Top-1", "Top-5", "N")
		depths := make([]int, 0, len(r.ByDepth))
		for d := range r.ByDepth {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		for _, d := range depths {
			a := r.ByDepth[d]
			fmt.Fprintf(&sb, "  %-6d %7.1f%% %7.1f%% %8d\n", d, a.Top1()*100, a.Top5()*100, a.N())
		}
	}
	render("Parameter", param)
	render("Return", ret)
	return sb.String()
}

// Section5Stats renders the dataset statistics of Section 5.
func (d *Dataset) Section5Stats() string {
	params, returns := d.Counts()
	var sb strings.Builder
	sb.WriteString("Section 5 dataset statistics\n")
	fmt.Fprintf(&sb, "  packages: %d\n", d.Packages)
	fmt.Fprintf(&sb, "  %s\n", d.DedupStats)
	fmt.Fprintf(&sb, "  samples: %d before cap, %d after (%d parameter, %d return)\n",
		d.SamplesBeforeCap, len(d.Samples), params, returns)
	fmt.Fprintf(&sb, "  common names: %d (threshold %.1f%% of packages)\n",
		len(d.CommonNames), d.Cfg.NameThreshold*100)
	counts := map[string]int{}
	for pkg, part := range d.Parts {
		_ = pkg
		counts[part.String()]++
	}
	fmt.Fprintf(&sb, "  split: %d train / %d valid / %d test packages\n",
		counts["train"], counts["valid"], counts["test"])
	return sb.String()
}
