package core

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/quant"
	"repro/internal/typelang"
)

// TestQuantizedExportLoadRoundTrip: exporting a predictor in each
// quantization mode and loading it back yields a working fast-math
// predictor, and the on-disk round trip agrees exactly with the
// in-memory QuantizePredictor (both decode the same dequantized
// weights, and fast-math inference is deterministic).
func TestQuantizedExportLoadRoundTrip(t *testing.T) {
	d := buildTestDataset(t)
	_, param := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)
	_, ret := d.RunTask(Task{Variant: typelang.VariantLSW, Return: true}, nil)
	p := &Predictor{Param: param, Return: ret, Opts: d.Cfg.Extract}
	src := []string{"i32", "<begin>", "local.get", "<param>", ";", "f64.load", "offset=8"}

	for _, mode := range []quant.Mode{quant.F32, quant.Int8} {
		path := filepath.Join(t.TempDir(), "model.qbin")
		if err := ExportQuantized(p, path, mode); err != nil {
			t.Fatalf("ExportQuantized(%s): %v", mode, err)
		}
		got, err := LoadQuantizedPredictor(path)
		if err != nil {
			t.Fatalf("LoadQuantizedPredictor(%s): %v", mode, err)
		}
		if got.Param == nil || got.Return == nil {
			t.Fatal("loaded quantized predictor missing models")
		}
		if !got.Param.Model.FastMath() || !got.Return.Model.FastMath() {
			t.Errorf("%s: quantized load did not enable fast-math", mode)
		}
		if got.Param.Task != p.Param.Task || got.Return.Task != p.Return.Task {
			t.Errorf("%s: task metadata lost in round trip", mode)
		}
		if (got.Param.BPE == nil) != (p.Param.BPE == nil) {
			t.Errorf("%s: BPE presence differs after round trip", mode)
		}

		mem, err := QuantizePredictor(p, mode)
		if err != nil {
			t.Fatalf("QuantizePredictor(%s): %v", mode, err)
		}
		a := got.Param.Predict(src, 5)
		b := mem.Param.Predict(src, 5)
		if len(a) == 0 {
			t.Fatalf("%s: quantized predictor returned no predictions", mode)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: disk and in-memory quantization disagree:\n%v\n%v", mode, a, b)
		}
	}
}

// TestLoadPredictorAuto routes both on-disk formats to the right loader.
func TestLoadPredictorAuto(t *testing.T) {
	d := buildTestDataset(t)
	_, param := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)
	p := &Predictor{Param: param, Opts: d.Cfg.Extract}
	dir := t.TempDir()

	full := filepath.Join(dir, "full.bin")
	if err := SavePredictor(p, full); err != nil {
		t.Fatal(err)
	}
	quantized := filepath.Join(dir, "quant.bin")
	if err := ExportQuantized(p, quantized, quant.Int8); err != nil {
		t.Fatal(err)
	}

	gotFull, err := LoadPredictorAuto(full)
	if err != nil {
		t.Fatalf("auto-load full-precision: %v", err)
	}
	if gotFull.Param.Model.FastMath() {
		t.Error("full-precision auto-load enabled fast-math")
	}
	gotQuant, err := LoadPredictorAuto(quantized)
	if err != nil {
		t.Fatalf("auto-load quantized: %v", err)
	}
	if !gotQuant.Param.Model.FastMath() {
		t.Error("quantized auto-load did not enable fast-math")
	}

	// The quantized loader must refuse the full-precision format.
	if _, err := LoadQuantizedPredictor(full); err == nil {
		t.Error("LoadQuantizedPredictor accepted a full-precision file")
	}
	if _, err := LoadQuantizedPredictor(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("LoadQuantizedPredictor accepted a missing file")
	}
}

// TestQuantizedF32Load: precision "f32" loads dequantize straight into
// float32 parameter storage — the float64 weight and gradient buffers
// are dropped, the models are pinned to the f32 engine, and predictions
// are deterministic and agree between the on-disk and in-memory paths.
func TestQuantizedF32Load(t *testing.T) {
	d := buildTestDataset(t)
	_, param := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)
	_, ret := d.RunTask(Task{Variant: typelang.VariantLSW, Return: true}, nil)
	p := &Predictor{Param: param, Return: ret, Opts: d.Cfg.Extract}
	src := []string{"i32", "<begin>", "local.get", "<param>", ";", "f64.load", "offset=8"}

	for _, mode := range []quant.Mode{quant.F32, quant.Int8} {
		path := filepath.Join(t.TempDir(), "model.qbin")
		if err := ExportQuantized(p, path, mode); err != nil {
			t.Fatalf("ExportQuantized(%s): %v", mode, err)
		}
		got, err := LoadQuantizedPredictorPrecision(path, "f32")
		if err != nil {
			t.Fatalf("LoadQuantizedPredictorPrecision(%s, f32): %v", mode, err)
		}
		for _, tr := range []*Trained{got.Param, got.Return} {
			if pr := tr.Model.Precision(); pr != "f32" {
				t.Fatalf("%s: model precision = %q, want f32", mode, pr)
			}
			if tr.Model.FastMath() {
				t.Errorf("%s: f32 load also enabled fast-math", mode)
			}
			for i, v := range tr.Model.Params() {
				if v.W != nil || v.G != nil {
					t.Fatalf("%s: tensor %d kept float64 storage after f32 load", mode, i)
				}
				if len(v.W32) != v.R*v.C {
					t.Fatalf("%s: tensor %d W32 has %d elems, want %d", mode, i, len(v.W32), v.R*v.C)
				}
			}
		}

		a := got.Param.Predict(src, 5)
		if len(a) == 0 {
			t.Fatalf("%s: f32 quantized predictor returned no predictions", mode)
		}
		if b := got.Param.Predict(src, 5); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: f32 predictions not deterministic:\n%v\n%v", mode, a, b)
		}
		mem, err := QuantizePredictorPrecision(p, mode, "f32")
		if err != nil {
			t.Fatalf("QuantizePredictorPrecision(%s, f32): %v", mode, err)
		}
		if b := mem.Param.Predict(src, 5); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: disk and in-memory f32 quantization disagree:\n%v\n%v", mode, a, b)
		}
	}

	// Unknown precision values are rejected, not silently ignored.
	path := filepath.Join(t.TempDir(), "model.qbin")
	if err := ExportQuantized(p, path, quant.F32); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadQuantizedPredictorPrecision(path, "f16"); err == nil {
		t.Error("LoadQuantizedPredictorPrecision accepted precision f16")
	}
}
