package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/bpe"
	"repro/internal/seq2seq"
)

// trainedState is the serialized form of a trained task model.
type trainedState struct {
	Task  Task
	Model []byte
	BPE   []byte // empty when subword tokenization was disabled
}

// Save writes the trained task (model + subword tokenizer) to w.
func (tr *Trained) Save(w io.Writer) error {
	var st trainedState
	st.Task = tr.Task
	var mb bytes.Buffer
	if err := tr.Model.Save(&mb); err != nil {
		return err
	}
	st.Model = mb.Bytes()
	if tr.BPE != nil {
		var bb bytes.Buffer
		if err := tr.BPE.Save(&bb); err != nil {
			return err
		}
		st.BPE = bb.Bytes()
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadTrained reads a trained task written with Save.
func LoadTrained(r io.Reader) (*Trained, error) {
	var st trainedState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load trained: %w", err)
	}
	m, err := seq2seq.Load(bytes.NewReader(st.Model))
	if err != nil {
		return nil, err
	}
	tr := &Trained{Task: st.Task, Model: m}
	if len(st.BPE) > 0 {
		if tr.BPE, err = bpe.Load(bytes.NewReader(st.BPE)); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// FingerprintPredictor returns a content hash of a predictor: the SHA-256
// of its serialized models (weights, vocabularies, tokenizers). Two
// predictors with the same fingerprint produce the same predictions, so
// the hash is a safe namespace for caches shared across model versions,
// replicas, and restarts — the serving layer keys its persistent
// prediction cache by it. Serialization is deterministic (gob over fixed
// struct shapes in registration order), so the fingerprint is stable
// across processes.
func FingerprintPredictor(p *Predictor) ([32]byte, error) {
	h := sha256.New()
	for _, tr := range []*Trained{p.Param, p.Return} {
		if tr == nil {
			h.Write([]byte{0})
			continue
		}
		h.Write([]byte{1})
		if err := tr.Save(h); err != nil {
			return [32]byte{}, fmt.Errorf("core: fingerprint predictor: %w", err)
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// predictorState pairs the two task models of a predictor.
type predictorState struct {
	Param  []byte
	Return []byte
}

// SavePredictor writes a predictor's models to a file.
func SavePredictor(p *Predictor, path string) error {
	var st predictorState
	if p.Param != nil {
		var b bytes.Buffer
		if err := p.Param.Save(&b); err != nil {
			return err
		}
		st.Param = b.Bytes()
	}
	if p.Return != nil {
		var b bytes.Buffer
		if err := p.Return.Save(&b); err != nil {
			return err
		}
		st.Return = b.Bytes()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(st)
}

// LoadPredictor reads a predictor written with SavePredictor. The
// extraction options default to the paper's.
func LoadPredictor(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var st predictorState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	p := &Predictor{Opts: DefaultConfig().Extract}
	if len(st.Param) > 0 {
		if p.Param, err = LoadTrained(bytes.NewReader(st.Param)); err != nil {
			return nil, err
		}
	}
	if len(st.Return) > 0 {
		if p.Return, err = LoadTrained(bytes.NewReader(st.Return)); err != nil {
			return nil, err
		}
	}
	return p, nil
}
