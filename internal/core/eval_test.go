package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/split"
	"repro/internal/typelang"
)

// TestEvalParallelismGolden pins the acceptance criterion that evaluation
// output — per-example predictions and the aggregated TaskResult — is
// byte-identical at -j 1, -j 4, and -j 8.
func TestEvalParallelismGolden(t *testing.T) {
	d := buildTestDataset(t)
	task := Task{Variant: typelang.VariantLSW}
	tr, err := d.TrainTask(task, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	test := d.realize(task, split.Test)
	srcs := make([][]string, len(test))
	for i, s := range test {
		srcs[i] = tr.encodeSrc(s.src)
	}

	d.Cfg.Parallelism = 1
	goldenPreds := seq2seq.EvalParallel(tr.Model, srcs, 5, 1, nil)
	goldenRes := d.EvalTask(task, tr, nil)

	for _, par := range []int{4, 8} {
		d.Cfg.Parallelism = par
		if preds := seq2seq.EvalParallel(tr.Model, srcs, 5, par, nil); !reflect.DeepEqual(preds, goldenPreds) {
			t.Errorf("-j %d: per-example predictions differ from -j 1", par)
		}
		if res := d.EvalTask(task, tr, nil); !reflect.DeepEqual(res, goldenRes) {
			t.Errorf("-j %d: TaskResult differs from -j 1:\n%+v\nvs\n%+v", par, res, goldenRes)
		}
	}
}

func TestEvalMetricsInstrumentation(t *testing.T) {
	d := buildTestDataset(t)
	task := Task{Variant: typelang.VariantLSW}
	reg := metrics.NewRegistry()
	em := NewEvalMetrics(reg)
	res, _, err := d.RunTaskInstrumented(task, em, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := em.ModelExamples.Value(); got != int64(res.TestN) {
		t.Errorf("ModelExamples = %d, want %d", got, res.TestN)
	}
	if got := em.BaselineExamples.Value(); got != int64(res.TestN) {
		t.Errorf("BaselineExamples = %d, want %d", got, res.TestN)
	}
	if em.PredictSeconds.Count() != int64(res.TestN) {
		t.Errorf("PredictSeconds observed %d examples", em.PredictSeconds.Count())
	}
	if em.EvalSeconds.Count() != 1 {
		t.Errorf("EvalSeconds observed %d tasks", em.EvalSeconds.Count())
	}
	var rendered bytes.Buffer
	if _, err := reg.WriteTo(&rendered); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered.String(), "eval_model_examples_total") {
		t.Error("eval metrics missing from registry render")
	}
}

// TestTrainPredictorCheckpointResume kills a checkpointed training run
// mid-way through the second stage (after the param model finished and
// one return-model epoch checkpointed), then reruns against the same
// checkpoint path and demands the same saved models as an uninterrupted
// run — the acceptance criterion for `snowwhite train` kill-tolerance.
func TestTrainPredictorCheckpointResume(t *testing.T) {
	cfg := testConfig()
	cfg.Corpus.Packages = 16
	cfg.Model.Epochs = 1 // scaled up by the small-task schedule

	full, err := TrainPredictor(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	killed := errors.New("killed")
	checkpointInterrupt = func(stage string, _ []byte) error {
		if stage == "return" {
			return killed
		}
		return nil
	}
	_, err = TrainPredictorCheckpointed(cfg, ckpt, nil)
	checkpointInterrupt = nil
	if !errors.Is(err, killed) {
		t.Fatalf("interrupted run returned %v, want injected kill", err)
	}

	st, err := loadTrainCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Done["param"]; !ok {
		t.Fatal("param stage not recorded as done at kill time")
	}
	if st.Pending != "return" || len(st.PendingCkpt) == 0 {
		t.Fatalf("pending stage = %q (ckpt %d bytes), want mid-return", st.Pending, len(st.PendingCkpt))
	}

	var logs []string
	resumed, err := TrainPredictorCheckpointed(cfg, ckpt, func(s string) { logs = append(logs, s) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(logs, "\n"), "resuming from checkpoint") {
		t.Errorf("resume not reported in logs:\n%s", strings.Join(logs, "\n"))
	}

	for _, m := range []struct {
		name      string
		got, want *Trained
	}{
		{"param", resumed.Param, full.Param},
		{"return", resumed.Return, full.Return},
	} {
		var got, want bytes.Buffer
		if err := m.got.Model.Save(&got); err != nil {
			t.Fatal(err)
		}
		if err := m.want.Model.Save(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s model: resumed run saved different weights than uninterrupted run", m.name)
		}
	}
}

// TestLoadTrainCheckpointMissingAndCorrupt covers the fresh-run and
// damaged-file paths.
func TestLoadTrainCheckpointMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if st, err := loadTrainCheckpoint(filepath.Join(dir, "nope.ckpt")); err != nil || st != nil {
		t.Fatalf("missing file: st=%v err=%v", st, err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrainCheckpoint(bad); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
