package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bpe"
	"repro/internal/extract"
	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/split"
	"repro/internal/typelang"
)

// Task identifies one prediction task of Table 5: a type-language variant,
// parameter vs return prediction, and optionally the t_low ablation.
type Task struct {
	Variant typelang.Variant
	Return  bool
	// AblateLowType removes the low-level WebAssembly type from the
	// input sequence (the rightmost Table 5 column).
	AblateLowType bool
}

// Name renders the task like the paper's table headers.
func (t Task) Name() string {
	n := t.Variant.String()
	if t.AblateLowType {
		n += ", tlow not given"
	}
	if t.Return {
		return n + " / return"
	}
	return n + " / parameter"
}

// taskSample is one sample realized for a task.
type taskSample struct {
	src   []string
	tgt   []string
	low   string
	depth int // nesting depth of the L_SW ground truth (Figure 4)
}

// realize converts dataset samples into task-specific (src, tgt) pairs.
func (d *Dataset) realize(task Task, part split.Part) []taskSample {
	var out []taskSample
	for _, s := range d.Samples {
		if s.Elem.IsReturn() != task.Return || d.Part(s) != part {
			continue
		}
		src := s.Input
		if task.AblateLowType && len(src) > 0 && src[0] != "<begin>" {
			src = src[1:]
		}
		tgt := task.Variant.Apply(s.Master, d.CommonFilter)
		lswTokens := typelang.VariantLSW.Apply(s.Master, d.CommonFilter)
		depth := 0
		if t, err := typelang.Parse(lswTokens); err == nil {
			depth = t.Depth()
		}
		out = append(out, taskSample{src: src, tgt: tgt, low: s.LowType, depth: depth})
	}
	return out
}

// TaskResult is one row group of Table 5 plus the per-depth buckets that
// Figure 4 plots.
type TaskResult struct {
	Task     Task
	Model    metrics.Accuracy
	Baseline metrics.Accuracy
	// HasBaseline is false for the t_low ablation, where the conditional
	// baseline is undefined (N/A in the paper's table).
	HasBaseline bool
	// ByDepth maps L_SW nesting depth to model accuracy (Figure 4).
	ByDepth map[int]*metrics.Accuracy
	TrainN  int
	TestN   int
}

// Trained bundles everything needed to predict types for new binaries.
type Trained struct {
	Task  Task
	Model *seq2seq.Model
	// BPE is the learned subword model for instruction tokens (nil when
	// disabled).
	BPE *bpe.Model
}

// encodeSrc applies subword tokenization to a source sequence.
func (tr *Trained) encodeSrc(src []string) []string {
	if tr.BPE == nil {
		return src
	}
	return tr.BPE.Encode(src)
}

// Predict returns the top-k type-token predictions for a prepared input
// sequence. Beams that decode to an empty sequence (immediate </s>) are
// dropped; if nothing remains, the uninformative type is returned.
func (tr *Trained) Predict(src []string, k int) [][]string {
	preds := tr.Model.Predict(tr.encodeSrc(src), k)
	return filterBeams(preds)
}

// PredictTyped predicts many prepared input sequences in one call, with a
// per-query beam count, decoding all of them through the model's batched
// multi-search beam decoder (one GEMM advances every live hypothesis of a
// group per step). Slot i holds exactly the wrapped form of what
// Predict(srcs[i], ks[i]) would return — same subword encoding,
// empty-beam filtering, and fallback — so callers batch purely for
// throughput. The serving layer's dynamic batcher coalesces concurrent
// requests into this entry point.
func (tr *Trained) PredictTyped(srcs [][]string, ks []int) [][]TypePrediction {
	enc := make([][]string, len(srcs))
	for i, src := range srcs {
		enc[i] = tr.encodeSrc(src)
	}
	multi := tr.Model.PredictMulti(enc, ks)
	out := make([][]TypePrediction, len(srcs))
	for i, preds := range multi {
		out[i] = wrapScored(preds)
	}
	return out
}

// PredictTypedCtx is PredictTyped with cooperative cancellation: the
// batched decode polls ctx at every decoder step and between groups, so
// an abandoned request stops consuming inference time mid-decode instead
// of running every query to completion. A nil-error return is bitwise
// identical to PredictTyped.
func (tr *Trained) PredictTypedCtx(ctx context.Context, srcs [][]string, ks []int) ([][]TypePrediction, error) {
	enc := make([][]string, len(srcs))
	for i, src := range srcs {
		enc[i] = tr.encodeSrc(src)
	}
	multi, err := tr.Model.PredictMultiCtx(ctx, enc, ks)
	if err != nil {
		return nil, err
	}
	out := make([][]TypePrediction, len(srcs))
	for i, preds := range multi {
		out[i] = wrapScored(preds)
	}
	return out, nil
}

// wrapScored converts one query's beams into ranked TypePredictions with
// normalized confidences. Empty beams (immediate </s>) are dropped like
// filterBeams does; the survivors' sequence log-probabilities go through
// a softmax, so confidences are comparable across functions and sum to 1
// within an element. The uninformative fallback keeps confidence 0: it
// carries no beam score.
func wrapScored(preds []seq2seq.Prediction) []TypePrediction {
	kept := make([]seq2seq.Prediction, 0, len(preds))
	for _, p := range preds {
		if len(p.Tokens) == 0 {
			continue
		}
		kept = append(kept, p)
	}
	if len(kept) == 0 {
		return []TypePrediction{{Tokens: []string{"unknown"}, Text: "unknown"}}
	}
	max := kept[0].LogProb
	for _, p := range kept[1:] {
		if p.LogProb > max {
			max = p.LogProb
		}
	}
	var sum float64
	exps := make([]float64, len(kept))
	for i, p := range kept {
		exps[i] = math.Exp(p.LogProb - max)
		sum += exps[i]
	}
	out := make([]TypePrediction, len(kept))
	for i, p := range kept {
		out[i] = TypePrediction{Tokens: p.Tokens, Text: LabelString(p.Tokens), Confidence: exps[i] / sum}
	}
	return out
}

// filterBeams drops beams that decoded to an empty sequence (immediate
// </s>) and substitutes the uninformative type when nothing remains.
func filterBeams(preds []seq2seq.Prediction) [][]string {
	out := make([][]string, 0, len(preds))
	for _, p := range preds {
		if len(p.Tokens) == 0 {
			continue
		}
		out = append(out, p.Tokens)
	}
	if len(out) == 0 {
		out = append(out, []string{"unknown"})
	}
	return out
}

// modelConfig returns the task's model hyperparameters: the dataset's
// base config with the worker-pool setting threaded through and the
// epoch budget scaled for small tasks. Small tasks (return prediction
// has ~7x fewer samples, Section 5) get proportionally more epochs so
// every task sees a comparable number of gradient steps; early stopping
// guards against overfit.
func (d *Dataset) modelConfig(trainN int) seq2seq.Config {
	mcfg := d.Cfg.Model
	mcfg.Parallelism = d.Cfg.Parallelism
	if trainN > 0 && trainN < 4000 {
		scale := 4000 / trainN
		if scale > 4 {
			scale = 4
		}
		if scale > 1 {
			mcfg.Epochs *= scale
		}
	}
	return mcfg
}

// learnBPE learns the subword model on training sources only (no
// leakage); nil when subword tokenization is disabled.
func (d *Dataset) learnBPE(train []taskSample) *bpe.Model {
	if d.Cfg.BPESrcVocab <= 0 {
		return nil
	}
	freq := map[string]int{}
	for _, s := range train {
		for _, tok := range s.src {
			freq[tok]++
		}
	}
	return bpe.Learn(freq, d.Cfg.BPESrcVocab)
}

func toPairs(enc func([]string) []string, ss []taskSample) []seq2seq.Pair {
	out := make([]seq2seq.Pair, 0, len(ss))
	for _, s := range ss {
		out = append(out, seq2seq.Pair{Src: enc(s.src), Tgt: s.tgt})
	}
	return out
}

// TrainTaskOptions controls checkpointing of one task's training run.
type TrainTaskOptions struct {
	// Checkpoint (may be nil) receives the serialized training checkpoint
	// after every completed epoch; returning an error aborts training.
	Checkpoint func(ckpt []byte) error
	// Resume (may be nil) is a checkpoint previously handed to
	// Checkpoint; training continues from the epoch it recorded instead
	// of starting over.
	Resume []byte
	// Metrics (may be nil) receives per-step and per-epoch training
	// counters and latency histograms, on fresh and resumed runs alike.
	Metrics *TrainMetrics
}

// TrainTask trains the seq2seq model for one task (without evaluating
// it), optionally checkpointing each epoch and resuming from a prior
// checkpoint. The dataset realization, subword model, and epoch schedule
// are all deterministic given the config, so a resumed run trains on
// exactly the data the interrupted run saw.
func (d *Dataset) TrainTask(task Task, opts *TrainTaskOptions, progress func(string)) (*Trained, error) {
	train := d.realize(task, split.Train)
	valid := d.realize(task, split.Valid)
	sub := d.learnBPE(train)
	enc := func(src []string) []string {
		if sub == nil {
			return src
		}
		return sub.Encode(src)
	}
	trainPairs := toPairs(enc, train)
	validPairs := toPairs(enc, valid)
	mcfg := d.modelConfig(len(train))

	var model *seq2seq.Model
	var st *seq2seq.TrainState
	if opts != nil && len(opts.Resume) > 0 {
		var err error
		model, st, err = seq2seq.LoadCheckpoint(bytes.NewReader(opts.Resume))
		if err != nil {
			return nil, err
		}
	} else {
		srcSeqs := make([][]string, len(trainPairs))
		tgtSeqs := make([][]string, len(trainPairs))
		for i, p := range trainPairs {
			srcSeqs[i] = p.Src
			tgtSeqs[i] = p.Tgt
		}
		model = seq2seq.NewModel(mcfg,
			seq2seq.BuildVocab(srcSeqs, mcfg.SrcVocab),
			seq2seq.BuildVocab(tgtSeqs, mcfg.TgtVocab))
	}
	if opts != nil && opts.Metrics != nil {
		model.SetTrainObserver(opts.Metrics.observer())
	}
	var ck func(*seq2seq.TrainState) error
	if opts != nil && opts.Checkpoint != nil {
		ck = func(ts *seq2seq.TrainState) error {
			var buf bytes.Buffer
			if err := model.SaveCheckpoint(&buf, ts); err != nil {
				return err
			}
			return opts.Checkpoint(buf.Bytes())
		}
	}
	if err := model.FitResume(trainPairs, validPairs, st, ck, progress); err != nil {
		return nil, err
	}
	return &Trained{Task: task, Model: model, BPE: sub}, nil
}

// EvalTask evaluates a trained task model (and the conditional t_low
// baseline) on the held-out test packages. Per-example beam searches fan
// out over d.Cfg.Parallelism workers (the -j convention; 0 = NumCPU) and
// merge in sample order, so the result is byte-identical at any worker
// count. em (may be nil) receives per-example counters and latencies.
func (d *Dataset) EvalTask(task Task, tr *Trained, em *EvalMetrics) *TaskResult {
	train := d.realize(task, split.Train)
	test := d.realize(task, split.Test)
	if em == nil {
		em = discardEvalMetrics()
	}

	base := baseline.New()
	for _, s := range train {
		base.Add(s.low, s.tgt)
	}

	res := &TaskResult{
		Task:        task,
		HasBaseline: !task.AblateLowType,
		ByDepth:     map[int]*metrics.Accuracy{},
		TrainN:      len(train),
		TestN:       len(test),
	}
	srcs := make([][]string, len(test))
	for i, s := range test {
		srcs[i] = tr.encodeSrc(s.src)
	}
	start := time.Now()
	predictions := seq2seq.EvalParallel(tr.Model, srcs, 5, d.Cfg.Parallelism, func(i int, seconds float64) {
		em.ModelExamples.Inc()
		em.PredictSeconds.Observe(seconds)
	})
	em.EvalSeconds.ObserveSince(start)
	for i, s := range test {
		var preds [][]string
		for _, p := range predictions[i] {
			preds = append(preds, p.Tokens)
		}
		res.Model.Add(preds, s.tgt)
		acc := res.ByDepth[s.depth]
		if acc == nil {
			acc = &metrics.Accuracy{}
			res.ByDepth[s.depth] = acc
		}
		acc.Add(preds, s.tgt)
		if res.HasBaseline {
			bstart := time.Now()
			res.Baseline.Add(base.Predict(s.low, 5), s.tgt)
			em.BaselineExamples.Inc()
			em.BaselineSeconds.ObserveSince(bstart)
		}
	}
	return res
}

// RunTask trains the model and baseline for one task and evaluates them on
// the held-out test packages. progress (may be nil) receives training
// logs.
func (d *Dataset) RunTask(task Task, progress func(string)) (*TaskResult, *Trained) {
	res, tr, err := d.RunTaskInstrumented(task, nil, progress)
	if err != nil {
		// Unreachable: without checkpoint options TrainTask cannot fail.
		panic(err)
	}
	return res, tr
}

// RunTaskInstrumented is RunTask with per-stage evaluation metrics (em
// may be nil).
func (d *Dataset) RunTaskInstrumented(task Task, em *EvalMetrics, progress func(string)) (*TaskResult, *Trained, error) {
	tr, err := d.TrainTask(task, nil, progress)
	if err != nil {
		return nil, nil, err
	}
	return d.EvalTask(task, tr, em), tr, nil
}

// LabelString joins a label's tokens (for display).
func LabelString(tokens []string) string { return strings.Join(tokens, " ") }

// Predictor pairs a trained parameter model with a trained return model —
// the artifact a reverse engineer queries (Figure 2, bottom half).
type Predictor struct {
	Param  *Trained
	Return *Trained
	Opts   extract.Options
}
