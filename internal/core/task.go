package core

import (
	"strings"

	"repro/internal/baseline"
	"repro/internal/bpe"
	"repro/internal/extract"
	"repro/internal/metrics"
	"repro/internal/seq2seq"
	"repro/internal/split"
	"repro/internal/typelang"
)

// Task identifies one prediction task of Table 5: a type-language variant,
// parameter vs return prediction, and optionally the t_low ablation.
type Task struct {
	Variant typelang.Variant
	Return  bool
	// AblateLowType removes the low-level WebAssembly type from the
	// input sequence (the rightmost Table 5 column).
	AblateLowType bool
}

// Name renders the task like the paper's table headers.
func (t Task) Name() string {
	n := t.Variant.String()
	if t.AblateLowType {
		n += ", tlow not given"
	}
	if t.Return {
		return n + " / return"
	}
	return n + " / parameter"
}

// taskSample is one sample realized for a task.
type taskSample struct {
	src   []string
	tgt   []string
	low   string
	depth int // nesting depth of the L_SW ground truth (Figure 4)
}

// realize converts dataset samples into task-specific (src, tgt) pairs.
func (d *Dataset) realize(task Task, part split.Part) []taskSample {
	var out []taskSample
	for _, s := range d.Samples {
		if s.Elem.IsReturn() != task.Return || d.Part(s) != part {
			continue
		}
		src := s.Input
		if task.AblateLowType && len(src) > 0 && src[0] != "<begin>" {
			src = src[1:]
		}
		tgt := task.Variant.Apply(s.Master, d.CommonFilter)
		lswTokens := typelang.VariantLSW.Apply(s.Master, d.CommonFilter)
		depth := 0
		if t, err := typelang.Parse(lswTokens); err == nil {
			depth = t.Depth()
		}
		out = append(out, taskSample{src: src, tgt: tgt, low: s.LowType, depth: depth})
	}
	return out
}

// TaskResult is one row group of Table 5 plus the per-depth buckets that
// Figure 4 plots.
type TaskResult struct {
	Task     Task
	Model    metrics.Accuracy
	Baseline metrics.Accuracy
	// HasBaseline is false for the t_low ablation, where the conditional
	// baseline is undefined (N/A in the paper's table).
	HasBaseline bool
	// ByDepth maps L_SW nesting depth to model accuracy (Figure 4).
	ByDepth map[int]*metrics.Accuracy
	TrainN  int
	TestN   int
}

// Trained bundles everything needed to predict types for new binaries.
type Trained struct {
	Task  Task
	Model *seq2seq.Model
	// BPE is the learned subword model for instruction tokens (nil when
	// disabled).
	BPE *bpe.Model
}

// encodeSrc applies subword tokenization to a source sequence.
func (tr *Trained) encodeSrc(src []string) []string {
	if tr.BPE == nil {
		return src
	}
	return tr.BPE.Encode(src)
}

// Predict returns the top-k type-token predictions for a prepared input
// sequence. Beams that decode to an empty sequence (immediate </s>) are
// dropped; if nothing remains, the uninformative type is returned.
func (tr *Trained) Predict(src []string, k int) [][]string {
	preds := tr.Model.Predict(tr.encodeSrc(src), k)
	out := make([][]string, 0, len(preds))
	for _, p := range preds {
		if len(p.Tokens) == 0 {
			continue
		}
		out = append(out, p.Tokens)
	}
	if len(out) == 0 {
		out = append(out, []string{"unknown"})
	}
	return out
}

// RunTask trains the model and baseline for one task and evaluates them on
// the held-out test packages. progress (may be nil) receives training
// logs.
func (d *Dataset) RunTask(task Task, progress func(string)) (*TaskResult, *Trained) {
	train := d.realize(task, split.Train)
	valid := d.realize(task, split.Valid)
	test := d.realize(task, split.Test)

	// Subword model learned on training sources only (no leakage).
	var sub *bpe.Model
	if d.Cfg.BPESrcVocab > 0 {
		freq := map[string]int{}
		for _, s := range train {
			for _, tok := range s.src {
				freq[tok]++
			}
		}
		sub = bpe.Learn(freq, d.Cfg.BPESrcVocab)
	}
	enc := func(src []string) []string {
		if sub == nil {
			return src
		}
		return sub.Encode(src)
	}
	toPairs := func(ss []taskSample) []seq2seq.Pair {
		out := make([]seq2seq.Pair, 0, len(ss))
		for _, s := range ss {
			out = append(out, seq2seq.Pair{Src: enc(s.src), Tgt: s.tgt})
		}
		return out
	}

	// Small tasks (return prediction has ~7x fewer samples, Section 5)
	// get proportionally more epochs so every task sees a comparable
	// number of gradient steps; early stopping guards against overfit.
	mcfg := d.Cfg.Model
	if n := len(train); n > 0 && n < 4000 {
		scale := 4000 / n
		if scale > 4 {
			scale = 4
		}
		if scale > 1 {
			mcfg.Epochs *= scale
		}
	}
	model := seq2seq.Train(mcfg, toPairs(train), toPairs(valid), progress)

	base := baseline.New()
	for _, s := range train {
		base.Add(s.low, s.tgt)
	}

	res := &TaskResult{
		Task:        task,
		HasBaseline: !task.AblateLowType,
		ByDepth:     map[int]*metrics.Accuracy{},
		TrainN:      len(train),
		TestN:       len(test),
	}
	for _, s := range test {
		var preds [][]string
		for _, p := range model.Predict(enc(s.src), 5) {
			preds = append(preds, p.Tokens)
		}
		res.Model.Add(preds, s.tgt)
		acc := res.ByDepth[s.depth]
		if acc == nil {
			acc = &metrics.Accuracy{}
			res.ByDepth[s.depth] = acc
		}
		acc.Add(preds, s.tgt)
		if res.HasBaseline {
			res.Baseline.Add(base.Predict(s.low, 5), s.tgt)
		}
	}
	return res, &Trained{Task: task, Model: model, BPE: sub}
}

// LabelString joins a label's tokens (for display).
func LabelString(tokens []string) string { return strings.Join(tokens, " ") }

// Predictor pairs a trained parameter model with a trained return model —
// the artifact a reverse engineer queries (Figure 2, bottom half).
type Predictor struct {
	Param  *Trained
	Return *Trained
	Opts   extract.Options
}
