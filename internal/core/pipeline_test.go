package core

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/bpe"
	"repro/internal/metrics"
	"repro/internal/split"
)

// pipelineTestConfig is small enough that three full builds stay in the
// seconds range, but large enough to exercise dedup (library duplication
// and exact dups) and a three-way split.
func pipelineTestConfig() Config {
	cfg := testConfig()
	cfg.Corpus.Packages = 14
	return cfg
}

// fingerprint serializes everything the downstream training stages
// consume: every sample with its split assignment (JSONL bytes), and the
// BPE vocabulary learned from the train portion the way RunTask learns
// it.
func fingerprint(t *testing.T, d *Dataset) (jsonl []byte, vocab string) {
	t.Helper()
	var buf bytes.Buffer
	if err := d.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	freq := map[string]int{}
	for _, s := range d.Samples {
		if d.Part(s) != split.Train {
			continue
		}
		for _, tok := range s.Input {
			freq[tok]++
		}
	}
	return buf.Bytes(), strings.Join(bpe.Learn(freq, d.Cfg.BPESrcVocab).Vocab(), " ")
}

// TestPipelineDeterminism is the regression gate for the parallel
// pipeline: -j 1, -j 4, and -j 8 must produce byte-identical serialized
// samples, identical split assignments, and an identical BPE vocabulary.
func TestPipelineDeterminism(t *testing.T) {
	build := func(j int) *Dataset {
		cfg := pipelineTestConfig()
		cfg.Parallelism = j
		d, err := BuildDataset(cfg, nil)
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		return d
	}
	ref := build(1)
	refJSONL, refVocab := fingerprint(t, ref)
	if len(ref.Samples) == 0 || len(refVocab) == 0 {
		t.Fatal("reference dataset is empty")
	}
	for _, j := range []int{4, 8} {
		d := build(j)
		jsonl, vocab := fingerprint(t, d)
		if !bytes.Equal(jsonl, refJSONL) {
			t.Errorf("-j %d: serialized samples differ from -j 1 (%d vs %d bytes)", j, len(jsonl), len(refJSONL))
		}
		if !reflect.DeepEqual(d.Parts, ref.Parts) {
			t.Errorf("-j %d: split assignment differs from -j 1", j)
		}
		if vocab != refVocab {
			t.Errorf("-j %d: BPE vocabulary differs from -j 1", j)
		}
		if d.DedupStats != ref.DedupStats {
			t.Errorf("-j %d: dedup stats differ: %+v vs %+v", j, d.DedupStats, ref.DedupStats)
		}
		if d.SamplesBeforeCap != ref.SamplesBeforeCap || d.Packages != ref.Packages {
			t.Errorf("-j %d: counts differ", j)
		}
	}
}

// TestPipelineRaceStress hammers the pipeline with far more workers than
// packages — and two whole builds racing each other — to let the race
// detector see every cross-goroutine interaction (cc.Compile, the
// sharded dedup index, extraction). Mirrors the server concurrency tests;
// wired into scripts/verify.sh.
func TestPipelineRaceStress(t *testing.T) {
	cfg := pipelineTestConfig()
	cfg.Corpus.Packages = 8
	cfg.Parallelism = 16

	var wg sync.WaitGroup
	out := make([]*Dataset, 2)
	errs := make([]error, 2)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = BuildDataset(cfg, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
	}
	a, _ := fingerprint(t, out[0])
	b, _ := fingerprint(t, out[1])
	if !bytes.Equal(a, b) {
		t.Error("two concurrent builds of the same config diverged")
	}
}

// TestPipelineMetrics checks that an instrumented build records per-stage
// counters consistent with the dataset it returns, and that the metrics
// render through the server's exposition format.
func TestPipelineMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	pm := NewPipelineMetrics(reg)
	cfg := pipelineTestConfig()
	cfg.Parallelism = 4
	d, err := BuildDatasetInstrumented(cfg, nil, pm)
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.PackagesGenerated.Value(); got != int64(d.Packages) {
		t.Errorf("PackagesGenerated = %d, want %d", got, d.Packages)
	}
	if got := pm.BinariesCompiled.Value(); got != int64(d.DedupStats.BinariesBefore) {
		t.Errorf("BinariesCompiled = %d, want %d", got, d.DedupStats.BinariesBefore)
	}
	if got := pm.BinariesKept.Value(); got != int64(d.DedupStats.BinariesAfter) {
		t.Errorf("BinariesKept = %d, want %d", got, d.DedupStats.BinariesAfter)
	}
	wantDropped := int64(d.DedupStats.ExactDuplicates + d.DedupStats.NearDuplicates)
	if got := pm.DuplicatesDropped.Value(); got != wantDropped {
		t.Errorf("DuplicatesDropped = %d, want %d", got, wantDropped)
	}
	if got := pm.SamplesExtracted.Value(); got != int64(d.SamplesBeforeCap) {
		t.Errorf("SamplesExtracted = %d, want %d", got, d.SamplesBeforeCap)
	}
	if pm.CompileSeconds.Count() != pm.BinariesCompiled.Value() {
		t.Errorf("compile latency count %d != compiled %d", pm.CompileSeconds.Count(), pm.BinariesCompiled.Value())
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pipeline_packages_generated_total", "pipeline_compile_seconds_bucket"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
