package core

import "repro/internal/metrics"

// EvalMetrics instruments task evaluation with the same
// counter/histogram primitives as the dataset pipeline and the
// prediction server; register them on the server's Registry to surface
// evaluation progress on /metrics. A nil *EvalMetrics disables
// instrumentation.
type EvalMetrics struct {
	ModelExamples    *metrics.Counter
	BaselineExamples *metrics.Counter
	PredictSeconds   *metrics.Histogram // per-example beam-search latency
	BaselineSeconds  *metrics.Histogram // per-example baseline lookup latency
	EvalSeconds      *metrics.Histogram // whole-task evaluation wall time
}

// NewEvalMetrics registers the evaluation counters and latency
// histograms on r.
func NewEvalMetrics(r *metrics.Registry) *EvalMetrics {
	return &EvalMetrics{
		ModelExamples:    r.NewCounter("eval_model_examples_total", "Test examples scored by the seq2seq model."),
		BaselineExamples: r.NewCounter("eval_baseline_examples_total", "Test examples scored by the t_low baseline."),
		PredictSeconds:   r.NewHistogram("eval_predict_seconds", "Per-example beam-search latency.", nil),
		BaselineSeconds:  r.NewHistogram("eval_baseline_seconds", "Per-example baseline prediction latency.", nil),
		EvalSeconds:      r.NewHistogram("eval_task_seconds", "Whole-task evaluation wall time.", nil),
	}
}

// discardEvalMetrics returns an instance whose metrics are not
// registered anywhere, so uninstrumented evaluations skip the nil
// checks.
func discardEvalMetrics() *EvalMetrics {
	return &EvalMetrics{
		ModelExamples:    &metrics.Counter{},
		BaselineExamples: &metrics.Counter{},
		PredictSeconds:   metrics.NewHistogram(nil),
		BaselineSeconds:  metrics.NewHistogram(nil),
		EvalSeconds:      metrics.NewHistogram(nil),
	}
}
