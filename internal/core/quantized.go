package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/ad"
	"repro/internal/bpe"
	"repro/internal/quant"
	"repro/internal/seq2seq"
)

// quantMagic prefixes quantized predictor files so LoadPredictorAuto can
// tell them apart from the gob-only full-precision format (gob streams
// never start with these bytes).
var quantMagic = []byte("SWQP1\n")

// quantTrainedState is the quantized serialized form of one Trained
// task model: everything modelState carries except the weights, which
// are stored as a quant.EncodeMatrices blob in parameter-registration
// order.
type quantTrainedState struct {
	Task     Task
	Cfg      seq2seq.Config
	SrcToks  []string
	TgtToks  []string
	Matrices []byte
	BPE      []byte // empty when subword tokenization was disabled
}

// quantPredictorState pairs the two quantized task models.
type quantPredictorState struct {
	Param  []byte // gob(quantTrainedState), empty if absent
	Return []byte
}

// quantizeTrained converts one Trained into its quantized serialized
// form.
func quantizeTrained(tr *Trained, mode quant.Mode) ([]byte, error) {
	params := tr.Model.Params()
	ms := make([]quant.Matrix, len(params))
	for i, v := range params {
		m, err := quant.QuantizeMatrix(v.R, v.C, v.W, mode)
		if err != nil {
			return nil, fmt.Errorf("tensor %d: %w", i, err)
		}
		ms[i] = m
	}
	st := quantTrainedState{Task: tr.Task, Cfg: tr.Model.Cfg, Matrices: quant.EncodeMatrices(ms)}
	st.SrcToks, st.TgtToks = tr.Model.VocabTokens()
	if tr.BPE != nil {
		var bb bytes.Buffer
		if err := tr.BPE.Save(&bb); err != nil {
			return nil, err
		}
		st.BPE = bb.Bytes()
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(st); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// trainedFromQuantized rebuilds a Trained from its quantized form,
// dequantizing each matrix straight into the model's own parameter
// storage (seq2seq.NewModelFromFill) — no intermediate [][]float64 that
// the old path allocated only for modelFromState to copy and discard.
//
// precision selects the inference engine the weights land in. "" or
// "f64" dequantizes into the float64 buffers and enables fast-math
// inference: quantized weights have already given up bitwise fidelity,
// so the load is pointed at the inference-only fast kernels and the
// accuracy-budget harness (internal/accbudget) governs the combined
// error. "f32" dequantizes into float32 storage directly and drops the
// never-read float64 weight and gradient buffers, halving the model's
// resident memory; the model is pinned to the f32 engine.
func trainedFromQuantized(data []byte, precision string) (*Trained, error) {
	switch precision {
	case "", "f64", "f32":
	default:
		return nil, fmt.Errorf("core: quantized trained: unknown precision %q (want f64 or f32)", precision)
	}
	var st quantTrainedState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: quantized trained: %w", err)
	}
	ms, err := quant.DecodeMatrices(st.Matrices)
	if err != nil {
		return nil, fmt.Errorf("core: quantized trained: %w", err)
	}
	f32 := precision == "f32"
	fill := func(i int, v *ad.V) error {
		if i >= len(ms) {
			return fmt.Errorf("model wants more than the %d stored matrices", len(ms))
		}
		m := &ms[i]
		if m.Rows*m.Cols != v.Elems() {
			return fmt.Errorf("stored matrix is %dx%d, model wants %d elements", m.Rows, m.Cols, v.Elems())
		}
		if f32 {
			v.W32 = m.DequantizeF32(v.W32[:0])
			v.W, v.G = nil, nil
			return nil
		}
		m.Dequantize(v.W)
		return nil
	}
	model, err := seq2seq.NewModelFromFill(st.Cfg, st.SrcToks, st.TgtToks, fill)
	if err != nil {
		return nil, err
	}
	if n := len(model.Params()); n != len(ms) {
		return nil, fmt.Errorf("core: quantized trained: %d stored matrices, model has %d tensors", len(ms), n)
	}
	if f32 {
		if err := model.SetPrecision("f32"); err != nil {
			return nil, err
		}
	} else {
		model.SetFastMath(true)
	}
	tr := &Trained{Task: st.Task, Model: model}
	if len(st.BPE) > 0 {
		if tr.BPE, err = bpe.Load(bytes.NewReader(st.BPE)); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// ExportQuantized writes a predictor to path in the quantized format:
// the quantMagic prefix followed by a gob stream whose model weights are
// quant-encoded in the given mode. Loading the result (LoadQuantized-
// Predictor or LoadPredictorAuto) yields a fast-math predictor.
func ExportQuantized(p *Predictor, path string, mode quant.Mode) error {
	var st quantPredictorState
	var err error
	if p.Param != nil {
		if st.Param, err = quantizeTrained(p.Param, mode); err != nil {
			return fmt.Errorf("core: quantize param model: %w", err)
		}
	}
	if p.Return != nil {
		if st.Return, err = quantizeTrained(p.Return, mode); err != nil {
			return fmt.Errorf("core: quantize return model: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(quantMagic); err != nil {
		return err
	}
	return gob.NewEncoder(f).Encode(st)
}

// LoadQuantizedPredictor reads a predictor written with ExportQuantized.
// The returned predictor's models run fast-math inference on the
// dequantized weights; extraction options default to the paper's.
func LoadQuantizedPredictor(path string) (*Predictor, error) {
	return LoadQuantizedPredictorPrecision(path, "")
}

// LoadQuantizedPredictorPrecision is LoadQuantizedPredictor with an
// engine choice: precision "f32" dequantizes straight into float32
// parameter storage and pins the models to the f32 inference engine,
// halving the predictor's resident memory; "" or "f64" is the fast-math
// float64 load.
func LoadQuantizedPredictorPrecision(path, precision string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(quantMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Errorf("core: load quantized predictor: %w", err)
	}
	if !bytes.Equal(magic, quantMagic) {
		return nil, fmt.Errorf("core: load quantized predictor: %q is not a quantized predictor file", path)
	}
	var st quantPredictorState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load quantized predictor: %w", err)
	}
	p := &Predictor{Opts: DefaultConfig().Extract}
	if len(st.Param) > 0 {
		if p.Param, err = trainedFromQuantized(st.Param, precision); err != nil {
			return nil, err
		}
	}
	if len(st.Return) > 0 {
		if p.Return, err = trainedFromQuantized(st.Return, precision); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// LoadPredictorAuto loads either predictor format, detecting quantized
// files by their magic prefix. Full-precision files behave exactly as
// LoadPredictor; quantized files come back with fast-math enabled.
func LoadPredictorAuto(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(quantMagic))
	n, _ := io.ReadFull(f, head)
	f.Close()
	if n == len(quantMagic) && bytes.Equal(head, quantMagic) {
		return LoadQuantizedPredictor(path)
	}
	return LoadPredictor(path)
}

// QuantizePredictor round-trips a predictor's weights through the given
// quantization mode in memory, returning a new predictor whose models
// carry the dequantized weights and run fast-math inference. The BPE
// tokenizers are shared with the input (they are immutable after
// training). Used by the accuracy-budget harness to compare full and
// quantized predictions without touching disk.
func QuantizePredictor(p *Predictor, mode quant.Mode) (*Predictor, error) {
	return QuantizePredictorPrecision(p, mode, "")
}

// QuantizePredictorPrecision is QuantizePredictor with an engine
// choice: precision "f32" lands the round-tripped weights in float32
// storage on the f32 engine (the in-memory analogue of
// LoadQuantizedPredictorPrecision), so the accuracy harness can score
// the f32 engine against the full-precision reference without a
// quantized file on disk.
func QuantizePredictorPrecision(p *Predictor, mode quant.Mode, precision string) (*Predictor, error) {
	out := &Predictor{Opts: p.Opts}
	quantize := func(tr *Trained) (*Trained, error) {
		data, err := quantizeTrained(tr, mode)
		if err != nil {
			return nil, err
		}
		q, err := trainedFromQuantized(data, precision)
		if err != nil {
			return nil, err
		}
		q.BPE = tr.BPE
		return q, nil
	}
	var err error
	if p.Param != nil {
		if out.Param, err = quantize(p.Param); err != nil {
			return nil, fmt.Errorf("core: quantize param model: %w", err)
		}
	}
	if p.Return != nil {
		if out.Return, err = quantize(p.Return); err != nil {
			return nil, fmt.Errorf("core: quantize return model: %w", err)
		}
	}
	return out, nil
}
