package core

import (
	"path/filepath"
	"testing"

	"repro/internal/quant"
	"repro/internal/typelang"
)

// weightBytes sums the resident parameter storage of a predictor's task
// models: 8 bytes per float64 weight and gradient, 4 per float32. The
// f32 quantized load drops W and G, so its figure pins the resident
// memory the direct-to-f32 path buys back.
func weightBytes(p *Predictor) int64 {
	var n int64
	for _, tr := range []*Trained{p.Param, p.Return} {
		if tr == nil {
			continue
		}
		for _, v := range tr.Model.Params() {
			n += int64(8*(len(v.W)+len(v.G)) + 4*len(v.W32))
		}
	}
	return n
}

// BenchmarkQuantizedLoad measures loading an int8-quantized predictor
// into each inference engine: f64 dequantizes straight into the model's
// float64 buffers (fast-math engine), f32 straight into float32 storage
// (f32 engine). The weight-bytes metric records each engine's resident
// parameter memory; f32 must come in at a quarter of the f64 figure
// (half from float32 weights, half again from the dropped gradients).
func BenchmarkQuantizedLoad(b *testing.B) {
	d, err := BuildDataset(testConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := d.TrainTask(Task{Variant: typelang.VariantLSW}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	p := &Predictor{Param: tr, Opts: d.Cfg.Extract}
	path := filepath.Join(b.TempDir(), "model.qbin")
	if err := ExportQuantized(p, path, quant.Int8); err != nil {
		b.Fatal(err)
	}
	for _, precision := range []string{"f64", "f32"} {
		b.Run("precision="+precision, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				q, err := LoadQuantizedPredictorPrecision(path, precision)
				if err != nil {
					b.Fatal(err)
				}
				bytes = weightBytes(q)
			}
			b.ReportMetric(float64(bytes), "weight-bytes")
		})
	}
}

// TestQuantizedF32ResidentMemoryHalved pins the memory claim exactly.
// The f32 load halves the weights themselves (float32 vs float64) and
// additionally drops the gradient buffers the f64 load still carries
// (ad.New allocates W and G together), so its resident parameter
// storage is exactly a quarter of the f64 quantized load's: 4 bytes per
// element against 16.
func TestQuantizedF32ResidentMemoryHalved(t *testing.T) {
	d := buildTestDataset(t)
	_, tr := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)
	p := &Predictor{Param: tr, Opts: d.Cfg.Extract}
	path := filepath.Join(t.TempDir(), "model.qbin")
	if err := ExportQuantized(p, path, quant.Int8); err != nil {
		t.Fatal(err)
	}
	q64, err := LoadQuantizedPredictorPrecision(path, "f64")
	if err != nil {
		t.Fatal(err)
	}
	q32, err := LoadQuantizedPredictorPrecision(path, "f32")
	if err != nil {
		t.Fatal(err)
	}
	b64, b32 := weightBytes(q64), weightBytes(q32)
	if b64 == 0 || b32 == 0 {
		t.Fatalf("empty weight storage: f64=%d f32=%d", b64, b32)
	}
	if 4*b32 != b64 {
		t.Errorf("f32 resident weight bytes = %d, want exactly a quarter of f64's %d", b32, b64)
	}
}
