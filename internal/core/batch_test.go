package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bpe"
	"repro/internal/cc"
	"repro/internal/dwarf"
	"repro/internal/seq2seq"
)

// syntheticTrained builds an untrained Trained artifact with a real BPE
// model, enough to exercise the batch prediction path end to end
// (equivalence of PredictTyped and Predict does not depend on weights).
func syntheticTrained() *Trained {
	freq := map[string]int{}
	var srcs, tgts [][]string
	for i := 0; i < 40; i++ {
		src := []string{"i32", fmt.Sprintf("local.get_%d", i%7), "i32.add", fmt.Sprintf("call_%d", i%5)}
		tgt := []string{"pointer", "primitive", "int", "32"}
		if i%3 == 0 {
			tgt = []string{"primitive", "float", "64"}
		}
		for _, tok := range src {
			freq[tok]++
		}
		srcs = append(srcs, src)
		tgts = append(tgts, tgt)
	}
	sub := bpe.Learn(freq, 80)
	enc := make([][]string, len(srcs))
	for i, s := range srcs {
		enc[i] = sub.Encode(s)
	}
	cfg := seq2seq.DefaultConfig()
	cfg.Hidden = 32
	cfg.Embed = 24
	m := seq2seq.NewModel(cfg, seq2seq.BuildVocab(enc, 0), seq2seq.BuildVocab(tgts, 0))
	return &Trained{Model: m, BPE: sub}
}

// TestPredictTypedMatchesPredict pins the batched prediction entry point
// to the per-query path: slot i of PredictTyped must be exactly the
// wrapped Predict(srcs[i], ks[i]) — same BPE encoding, empty-beam
// filtering, and fallback — across mixed beam widths and more queries
// than one decode group.
func TestPredictTypedMatchesPredict(t *testing.T) {
	tr := syntheticTrained()
	var srcs [][]string
	var ks []int
	for i := 0; i < 11; i++ {
		srcs = append(srcs, []string{"i32", fmt.Sprintf("local.get_%d", i%7), "i32.add", fmt.Sprintf("call_%d", i%5)})
		ks = append(ks, []int{1, 5, 3}[i%3])
	}
	got := tr.PredictTyped(srcs, ks)
	if len(got) != len(srcs) {
		t.Fatalf("PredictTyped returned %d results for %d queries", len(got), len(srcs))
	}
	for i := range srcs {
		want := wrap(tr.Predict(srcs[i], ks[i]))
		if len(got[i]) != len(want) {
			t.Errorf("query %d (k=%d): batched %d beams, sequential %d", i, ks[i], len(got[i]), len(want))
			continue
		}
		sum := 0.0
		for j := range want {
			if !reflect.DeepEqual(got[i][j].Tokens, want[j].Tokens) || got[i][j].Text != want[j].Text {
				t.Errorf("query %d beam %d: batched %v, sequential %v", i, j, got[i][j], want[j])
			}
			if j > 0 && got[i][j].Confidence > got[i][j-1].Confidence+1e-12 {
				t.Errorf("query %d: confidence not non-increasing at beam %d", i, j)
			}
			sum += got[i][j].Confidence
		}
		fallback := len(got[i]) == 1 && got[i][0].Text == "unknown"
		if !fallback && (sum < 1-1e-9 || sum > 1+1e-9) {
			t.Errorf("query %d: confidences sum to %v, want 1", i, sum)
		}
	}
}

// TestInputAccessors checks the extraction accessors the batcher uses:
// they produce the exact sequences PredictParam/PredictReturn feed the
// models, and reject the same invalid indices.
func TestInputAccessors(t *testing.T) {
	obj, err := cc.Compile(`
double scale(double *xs, int n) {
	if (xs != 0 && n > 0) { return xs[0] * 2.0; }
	return 0.0;
}
`, cc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	dwarf.Strip(obj.Module)
	p := &Predictor{Opts: DefaultConfig().Extract}

	in, err := p.ParamInput(obj.Module, 0, 0)
	if err != nil || len(in) == 0 {
		t.Fatalf("ParamInput: %v (len %d)", err, len(in))
	}
	rin, err := p.ReturnInput(obj.Module, 0)
	if err != nil || len(rin) == 0 {
		t.Fatalf("ReturnInput: %v (len %d)", err, len(rin))
	}
	if reflect.DeepEqual(in, rin) {
		t.Error("param and return inputs unexpectedly identical")
	}
	if _, err := p.ParamInput(obj.Module, 0, 9); err == nil {
		t.Error("bad param index accepted")
	}
	if _, err := p.ParamInput(obj.Module, 99, 0); err == nil {
		t.Error("bad function index accepted")
	}
	if _, err := p.ReturnInput(obj.Module, 99); err == nil {
		t.Error("bad function index accepted")
	}
}
