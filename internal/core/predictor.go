package core

import (
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/extract"
	"repro/internal/wasm"
)

// TypePrediction is one ranked prediction for a signature element.
type TypePrediction struct {
	Tokens []string `json:"tokens"`
	// Text is the space-joined token sequence, e.g.
	// "pointer primitive float 64".
	Text string `json:"text"`
	// Confidence is the beam's normalized score: softmax over the
	// surviving beams' sequence log-probabilities, so the k predictions
	// for one element sum to 1. Zero (omitted in JSON) for the
	// uninformative fallback, whose score is not comparable.
	Confidence float64 `json:"confidence,omitempty"`
}

// ParamInput extracts the model input sequence for one parameter of a
// module-defined function — the data-flow slice plus low-level type that
// PredictParam feeds the parameter model. Callers that batch queries
// (the serving layer's dynamic batcher) extract inputs first, coalesce
// them, and decode through Trained.PredictTyped.
func (p *Predictor) ParamInput(m *wasm.Module, funcIdx, paramIdx int) ([]string, error) {
	if funcIdx < 0 || funcIdx >= len(m.Funcs) {
		return nil, fmt.Errorf("core: function index %d out of range", funcIdx)
	}
	fn := &m.Funcs[funcIdx]
	if int(fn.TypeIdx) >= len(m.Types) {
		return nil, fmt.Errorf("core: function %d has invalid type index", funcIdx)
	}
	sig := m.Types[fn.TypeIdx]
	if paramIdx < 0 || paramIdx >= len(sig.Params) {
		return nil, fmt.Errorf("core: parameter index %d out of range (%d params)", paramIdx, len(sig.Params))
	}
	return extract.InputForParam(fn, paramIdx, sig.Params[paramIdx], p.Opts), nil
}

// ReturnInput extracts the model input sequence for a module-defined
// function's return value (the batched counterpart of PredictReturn's
// extraction step).
func (p *Predictor) ReturnInput(m *wasm.Module, funcIdx int) ([]string, error) {
	if funcIdx < 0 || funcIdx >= len(m.Funcs) {
		return nil, fmt.Errorf("core: function index %d out of range", funcIdx)
	}
	fn := &m.Funcs[funcIdx]
	if int(fn.TypeIdx) >= len(m.Types) {
		return nil, fmt.Errorf("core: function %d has invalid type index", funcIdx)
	}
	sig := m.Types[fn.TypeIdx]
	if len(sig.Results) == 0 {
		return nil, fmt.Errorf("core: function %d returns no value", funcIdx)
	}
	return extract.InputForReturn(fn, sig.Results[0], p.Opts), nil
}

// PredictParam predicts the high-level type of one parameter of a
// module-defined function in a (possibly stripped) binary.
func (p *Predictor) PredictParam(m *wasm.Module, funcIdx, paramIdx, k int) ([]TypePrediction, error) {
	if p.Param == nil {
		return nil, fmt.Errorf("core: predictor has no parameter model")
	}
	input, err := p.ParamInput(m, funcIdx, paramIdx)
	if err != nil {
		return nil, err
	}
	return p.Param.PredictTyped([][]string{input}, []int{k})[0], nil
}

// PredictReturn predicts the high-level return type of a module-defined
// function.
func (p *Predictor) PredictReturn(m *wasm.Module, funcIdx, k int) ([]TypePrediction, error) {
	if p.Return == nil {
		return nil, fmt.Errorf("core: predictor has no return model")
	}
	input, err := p.ReturnInput(m, funcIdx)
	if err != nil {
		return nil, err
	}
	return p.Return.PredictTyped([][]string{input}, []int{k})[0], nil
}

// DecodeStripped decodes a wasm binary and strips its DWARF custom
// sections, yielding the module exactly as a reverse engineer (or the
// prediction server) sees it: code only, no ground truth. All prediction
// entry points that start from raw bytes share this helper.
func DecodeStripped(bin []byte) (*wasm.Module, error) {
	d, err := wasm.Decode(bin)
	if err != nil {
		return nil, err
	}
	dwarf.Strip(d.Module)
	return d.Module, nil
}

// PredictBinary decodes a binary, strips its debug info, and predicts all
// parameter and return types of one function, returning them keyed by
// element name ("param0".."paramN", "return").
func (p *Predictor) PredictBinary(bin []byte, funcIdx, k int) (map[string][]TypePrediction, error) {
	m, err := DecodeStripped(bin)
	if err != nil {
		return nil, err
	}
	return p.PredictModule(m, funcIdx, k)
}

// PredictModule predicts all parameter and return types of one
// module-defined function of an already-decoded (and typically stripped)
// module. Callers that decode once and query many functions — the predict
// CLI, the serving layer — use this to avoid re-decoding per query and to
// guarantee predictions run on the module they inspected.
func (p *Predictor) PredictModule(m *wasm.Module, funcIdx, k int) (map[string][]TypePrediction, error) {
	if funcIdx < 0 || funcIdx >= len(m.Funcs) {
		return nil, fmt.Errorf("core: function index %d out of range", funcIdx)
	}
	sig, err := m.FuncTypeAt(uint32(funcIdx + m.NumImportedFuncs()))
	if err != nil {
		return nil, err
	}
	out := map[string][]TypePrediction{}
	for pi := range sig.Params {
		preds, err := p.PredictParam(m, funcIdx, pi, k)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("param%d", pi)] = preds
	}
	if len(sig.Results) > 0 && p.Return != nil {
		preds, err := p.PredictReturn(m, funcIdx, k)
		if err != nil {
			return nil, err
		}
		out["return"] = preds
	}
	return out, nil
}

func wrap(preds [][]string) []TypePrediction {
	out := make([]TypePrediction, 0, len(preds))
	for _, p := range preds {
		out = append(out, TypePrediction{Tokens: p, Text: LabelString(p)})
	}
	return out
}
