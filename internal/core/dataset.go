// Package core orchestrates the complete SnowWhite pipeline (Figure 2 of
// the paper): corpus generation, compilation to WebAssembly object files
// with DWARF, binary-level deduplication, sample extraction, per-package
// capping and package-level splitting, common-name vocabulary extraction,
// model training per type-language variant, and the evaluation that
// regenerates the paper's tables and figures.
package core

import (
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/extract"
	"repro/internal/seq2seq"
	"repro/internal/split"
	"repro/internal/typelang"
)

// Config assembles the pipeline's knobs.
type Config struct {
	Corpus  corpus.Options
	Extract extract.Options
	Model   seq2seq.Config
	// NameThreshold is the minimum fraction of packages a type name must
	// appear in to enter the common-name vocabulary (paper: 1%).
	NameThreshold float64
	// BPESrcVocab is the subword vocabulary size for instruction tokens
	// (paper: v' = 500); 0 disables subword tokenization.
	BPESrcVocab int
	// SplitSeed keys the deterministic package split.
	SplitSeed uint64
	// Parallelism bounds the dataset pipeline's worker pool (the -j
	// flag); 0 means runtime.NumCPU(). Any value produces byte-identical
	// datasets: per-package seeding and order-resolved dedup make the
	// build independent of worker count and scheduling.
	Parallelism int
	// Split holds the validation/test fractions (paper: 2%/2%). Small
	// reproduction runs may raise them for statistically stabler test
	// sets.
	Split split.Fractions
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig() Config {
	return Config{
		Corpus:        corpus.DefaultOptions(),
		Extract:       extract.DefaultOptions(),
		Model:         seq2seq.DefaultConfig(),
		NameThreshold: 0.01,
		BPESrcVocab:   500,
		SplitSeed:     42,
		Split:         split.PaperFractions(),
	}
}

// Dataset is the fully prepared dataset: deduplicated, capped, split, and
// labeled with master (All Names) types from which every language
// variant's labels derive.
type Dataset struct {
	Cfg     Config
	Samples []extract.Sample
	Parts   map[string]split.Part

	NameStats   *typelang.NameStats
	CommonNames []typelang.NameCount
	// CommonFilter is the membership predicate over CommonNames.
	CommonFilter func(string) bool

	DedupStats dedup.Stats
	Packages   int
	// SamplesBeforeCap records the sample count before per-package
	// capping, for the Section 5 statistics.
	SamplesBeforeCap int
}

// BuildDataset runs generation, compilation, dedup, extraction, capping,
// naming, and splitting on the parallel pipeline (see pipeline.go).
// progress (may be nil) receives coarse stage updates.
func BuildDataset(cfg Config, progress func(string)) (*Dataset, error) {
	return BuildDatasetInstrumented(cfg, progress, nil)
}

// Part returns the split portion a sample belongs to.
func (d *Dataset) Part(s extract.Sample) split.Part {
	return d.Parts[s.Pkg]
}

// Counts returns the number of parameter and return samples.
func (d *Dataset) Counts() (params, returns int) {
	for _, s := range d.Samples {
		if s.Elem.IsReturn() {
			returns++
		} else {
			params++
		}
	}
	return
}
