// Package core orchestrates the complete SnowWhite pipeline (Figure 2 of
// the paper): corpus generation, compilation to WebAssembly object files
// with DWARF, binary-level deduplication, sample extraction, per-package
// capping and package-level splitting, common-name vocabulary extraction,
// model training per type-language variant, and the evaluation that
// regenerates the paper's tables and figures.
package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/corpus"
	"repro/internal/dedup"
	"repro/internal/extract"
	"repro/internal/seq2seq"
	"repro/internal/split"
	"repro/internal/typelang"
)

// Config assembles the pipeline's knobs.
type Config struct {
	Corpus  corpus.Options
	Extract extract.Options
	Model   seq2seq.Config
	// NameThreshold is the minimum fraction of packages a type name must
	// appear in to enter the common-name vocabulary (paper: 1%).
	NameThreshold float64
	// BPESrcVocab is the subword vocabulary size for instruction tokens
	// (paper: v' = 500); 0 disables subword tokenization.
	BPESrcVocab int
	// SplitSeed keys the deterministic package split.
	SplitSeed uint64
	// Split holds the validation/test fractions (paper: 2%/2%). Small
	// reproduction runs may raise them for statistically stabler test
	// sets.
	Split split.Fractions
}

// DefaultConfig returns a configuration sized for minutes-scale runs.
func DefaultConfig() Config {
	return Config{
		Corpus:        corpus.DefaultOptions(),
		Extract:       extract.DefaultOptions(),
		Model:         seq2seq.DefaultConfig(),
		NameThreshold: 0.01,
		BPESrcVocab:   500,
		SplitSeed:     42,
		Split:         split.PaperFractions(),
	}
}

// Dataset is the fully prepared dataset: deduplicated, capped, split, and
// labeled with master (All Names) types from which every language
// variant's labels derive.
type Dataset struct {
	Cfg     Config
	Samples []extract.Sample
	Parts   map[string]split.Part

	NameStats   *typelang.NameStats
	CommonNames []typelang.NameCount
	// CommonFilter is the membership predicate over CommonNames.
	CommonFilter func(string) bool

	DedupStats dedup.Stats
	Packages   int
	// SamplesBeforeCap records the sample count before per-package
	// capping, for the Section 5 statistics.
	SamplesBeforeCap int
}

// BuildDataset runs generation, compilation, dedup, extraction, capping,
// naming, and splitting. progress (may be nil) receives coarse stage
// updates.
func BuildDataset(cfg Config, progress func(string)) (*Dataset, error) {
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	pkgs := corpus.Generate(cfg.Corpus)
	say("generated %d packages", len(pkgs))

	var bins []dedup.Binary
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			obj, err := cc.Compile(f.Source, cc.Options{FileName: f.Name, Debug: true})
			if err != nil {
				return nil, fmt.Errorf("core: compile %s: %w", f.Name, err)
			}
			bins = append(bins, dedup.Binary{Pkg: pkg.Name, Name: f.Name, Data: obj.Binary})
		}
	}
	say("compiled %d object files", len(bins))

	kept, stats, err := dedup.Dedup(bins, dedup.LevelBinary)
	if err != nil {
		return nil, err
	}
	say("%s", stats)

	var samples []extract.Sample
	for _, b := range kept {
		s, err := extract.FromBinary(b.Pkg, b.Name, b.Data, cfg.Extract)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s...)
	}
	before := len(samples)
	samples = split.CapPerPackage(samples, func(s extract.Sample) string { return s.Pkg })
	say("extracted %d samples (%d after per-package cap)", before, len(samples))

	// Common-name vocabulary over the whole dataset (Section 3.6).
	names := typelang.NewNameStats()
	for _, s := range samples {
		names.Add(s.Pkg, s.Master)
	}
	common := names.Common(cfg.NameThreshold)
	say("extracted %d common type names from %d packages", len(common), names.NumPackages())

	pkgNames := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		pkgNames = append(pkgNames, p.Name)
	}
	fr := cfg.Split
	if fr.Valid == 0 && fr.Test == 0 {
		fr = split.PaperFractions()
	}
	parts := split.ByPackage(pkgNames, cfg.SplitSeed, fr)

	return &Dataset{
		Cfg:              cfg,
		Samples:          samples,
		Parts:            parts,
		NameStats:        names,
		CommonNames:      common,
		CommonFilter:     typelang.FilterFunc(common),
		DedupStats:       stats,
		Packages:         len(pkgs),
		SamplesBeforeCap: before,
	}, nil
}

// Part returns the split portion a sample belongs to.
func (d *Dataset) Part(s extract.Sample) split.Part {
	return d.Parts[s.Pkg]
}

// Counts returns the number of parameter and return samples.
func (d *Dataset) Counts() (params, returns int) {
	for _, s := range d.Samples {
		if s.Elem.IsReturn() {
			returns++
		} else {
			params++
		}
	}
	return
}
