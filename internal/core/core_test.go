package core

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/dwarf"
	"repro/internal/split"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

// testConfig returns a config small enough for unit tests (seconds).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus.Packages = 24
	cfg.Corpus.MinFuncs = 3
	cfg.Corpus.MaxFuncs = 5
	cfg.Model.Hidden = 32
	cfg.Model.Embed = 24
	cfg.Model.Epochs = 2
	cfg.Model.MaxSrcLen = 60
	cfg.BPESrcVocab = 300
	return cfg
}

func buildTestDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := BuildDataset(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildDataset(t *testing.T) {
	var logs []string
	d, err := BuildDataset(testConfig(), func(s string) { logs = append(logs, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) < 100 {
		t.Fatalf("only %d samples", len(d.Samples))
	}
	params, returns := d.Counts()
	if params == 0 || returns == 0 {
		t.Fatalf("params=%d returns=%d", params, returns)
	}
	if params < returns {
		t.Errorf("expected more parameter samples than returns (%d vs %d)", params, returns)
	}
	if d.DedupStats.BinariesBefore <= d.DedupStats.BinariesAfter {
		t.Errorf("dedup removed nothing: %+v", d.DedupStats)
	}
	if len(d.CommonNames) == 0 {
		t.Error("no common names extracted")
	}
	// size_t must be among the common names (appears in ~64% of packages).
	found := false
	for _, n := range d.CommonNames {
		if n.Name == "size_t" {
			found = true
		}
	}
	if !found {
		t.Errorf("size_t missing from common names: %v", d.CommonNames)
	}
	// Every sample's package has a split assignment.
	for _, s := range d.Samples {
		if _, ok := d.Parts[s.Pkg]; !ok {
			t.Fatalf("package %s unassigned", s.Pkg)
		}
	}
	if len(logs) < 4 {
		t.Errorf("progress logs missing: %v", logs)
	}
}

func TestTables(t *testing.T) {
	d := buildTestDataset(t)

	t1 := Table1()
	if !strings.Contains(t1, "SnowWhite") || !strings.Contains(t1, "Eklavya") {
		t.Errorf("Table1:\n%s", t1)
	}

	t2 := d.Table2(10)
	if !strings.Contains(t2, "pointer") {
		t.Errorf("Table2 lacks pointer types:\n%s", t2)
	}

	t3 := d.Table3(8)
	if !strings.Contains(t3, "size_t") {
		t.Errorf("Table3 lacks size_t:\n%s", t3)
	}

	rows := d.Table4()
	if len(rows) != 4 {
		t.Fatalf("Table4 has %d rows", len(rows))
	}
	// Expressiveness ordering: AllNames >= LSW > Simplified > Eklavya.
	if !(rows[0].Unique >= rows[1].Unique && rows[1].Unique > rows[2].Unique && rows[2].Unique > rows[3].Unique) {
		t.Errorf("|L| ordering broken: %+v", rows)
	}
	if rows[3].Unique > 7 {
		t.Errorf("Eklavya has %d types, max 7", rows[3].Unique)
	}
	// Eklavya's distribution is the most skewed (lowest entropy).
	if rows[3].NormEntropy >= rows[1].NormEntropy {
		t.Errorf("entropy ordering broken: Eklavya %.2f vs LSW %.2f", rows[3].NormEntropy, rows[1].NormEntropy)
	}
	if !strings.Contains(FormatTable4(rows), "H/Hmax") {
		t.Error("FormatTable4 header missing")
	}

	s5 := d.Section5Stats()
	if !strings.Contains(s5, "dedup") || !strings.Contains(s5, "split") {
		t.Errorf("Section5Stats:\n%s", s5)
	}
}

func TestRunTaskAndPredictor(t *testing.T) {
	d := buildTestDataset(t)
	paramTask := Task{Variant: typelang.VariantLSW}
	res, trained := d.RunTask(paramTask, nil)
	if res.TestN == 0 || res.TrainN == 0 {
		t.Fatalf("task sizes: train %d test %d", res.TrainN, res.TestN)
	}
	if res.Model.N() != res.TestN {
		t.Errorf("evaluated %d of %d test samples", res.Model.N(), res.TestN)
	}
	if !res.HasBaseline || res.Baseline.N() == 0 {
		t.Error("baseline missing")
	}
	if len(res.ByDepth) == 0 {
		t.Error("no depth buckets for Figure 4")
	}

	retTask := Task{Variant: typelang.VariantLSW, Return: true}
	retRes, retTrained := d.RunTask(retTask, nil)
	if retRes.TestN == 0 {
		t.Fatal("no return test samples")
	}

	// Predictor on a stripped binary.
	obj, err := cc.Compile(`
double first(double *xs, int n) {
	if (xs != NULL && n > 0) { return xs[0]; }
	return 0.0;
}
`, cc.Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	dwarf.Strip(obj.Module)
	bin, _, err := wasm.Encode(obj.Module)
	if err != nil {
		t.Fatal(err)
	}
	p := &Predictor{Param: trained, Return: retTrained, Opts: d.Cfg.Extract}
	preds, err := p.PredictBinary(bin, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds["param0"]) == 0 || len(preds["param1"]) == 0 || len(preds["return"]) == 0 {
		t.Fatalf("predictions missing: %v", preds)
	}
	for _, tp := range preds["param0"] {
		if tp.Text == "" {
			t.Error("empty prediction text")
		}
	}
	// Errors for bad indices.
	if _, err := p.PredictBinary(bin, 99, 5); err == nil {
		t.Error("bad function index accepted")
	}
	if _, err := p.PredictParam(obj.Module, 0, 9, 5); err == nil {
		t.Error("bad param index accepted")
	}

	// Formatting.
	table5 := FormatTable5([]*TaskResult{res, retRes})
	if !strings.Contains(table5, "Top-1") || !strings.Contains(table5, "Lsw / parameter") {
		t.Errorf("Table5 formatting:\n%s", table5)
	}
	fig4 := FormatFigure4(res, retRes)
	if !strings.Contains(fig4, "Depth") {
		t.Errorf("Figure4 formatting:\n%s", fig4)
	}
}

func TestAblationDropsLowType(t *testing.T) {
	d := buildTestDataset(t)
	normal := d.realize(Task{Variant: typelang.VariantLSW}, split.Test)
	ablated := d.realize(Task{Variant: typelang.VariantLSW, AblateLowType: true}, split.Test)
	if len(normal) != len(ablated) {
		t.Fatalf("sample counts differ: %d vs %d", len(normal), len(ablated))
	}
	for i := range normal {
		if normal[i].src[0] == "<begin>" {
			t.Fatal("normal input lacks low type")
		}
		if ablated[i].src[0] != "<begin>" {
			t.Fatalf("ablated input still has low type: %v", ablated[i].src[:2])
		}
	}
}

func TestTable5TasksList(t *testing.T) {
	tasks := Table5Tasks()
	if len(tasks) != 10 {
		t.Fatalf("%d tasks, want 10", len(tasks))
	}
	if !strings.Contains(tasks[4].Name(), "tlow not given") {
		t.Errorf("task 4 = %s", tasks[4].Name())
	}
	if !strings.Contains(tasks[9].Name(), "return") {
		t.Errorf("task 9 = %s", tasks[9].Name())
	}
}
