package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/typelang"
)

func TestTrainMetricsInstrumentation(t *testing.T) {
	d := buildTestDataset(t)
	reg := metrics.NewRegistry()
	tm := NewTrainMetrics(reg)
	tr, err := d.TrainTask(Task{Variant: typelang.VariantLSW}, &TrainTaskOptions{Metrics: tm}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Model == nil {
		t.Fatal("no model trained")
	}

	batches := tm.Batches.Value()
	if batches == 0 {
		t.Fatal("no optimizer steps counted")
	}
	if shards := tm.Shards.Value(); shards < batches {
		t.Errorf("%d shards for %d batches; every batch has at least one shard", shards, batches)
	}
	if tm.Tokens.Value() == 0 {
		t.Error("no target tokens counted")
	}
	epochs := tm.Epochs.Value()
	if epochs == 0 {
		t.Error("no epochs counted")
	}
	if got := tm.ShardSeconds.Count(); got != batches {
		t.Errorf("ShardSeconds observed %d steps, counters saw %d", got, batches)
	}
	if got := tm.MergeSeconds.Count(); got != batches {
		t.Errorf("MergeSeconds observed %d steps, counters saw %d", got, batches)
	}
	if got := tm.EpochSeconds.Count(); got != epochs {
		t.Errorf("EpochSeconds observed %d epochs, counters saw %d", got, epochs)
	}

	var rendered bytes.Buffer
	if _, err := reg.WriteTo(&rendered); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"train_batches_total", "train_shard_seconds", "train_epoch_seconds"} {
		if !strings.Contains(rendered.String(), name) {
			t.Errorf("%s missing from registry render", name)
		}
	}
}
