package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/typelang"
)

func TestTrainedSaveLoadRoundTrip(t *testing.T) {
	d := buildTestDataset(t)
	_, tr := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadTrained(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Task != tr.Task {
		t.Errorf("task = %+v, want %+v", got.Task, tr.Task)
	}
	if (got.BPE == nil) != (tr.BPE == nil) {
		t.Fatal("BPE presence differs")
	}

	// Identical predictions before and after the round trip.
	src := []string{"i32", "<begin>", "local.get", "<param>", ";", "f64.load", "offset=8"}
	a := tr.Predict(src, 5)
	b := got.Predict(src, 5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("predictions differ after round trip:\n%v\n%v", a, b)
	}
}

func TestPredictorSaveLoad(t *testing.T) {
	d := buildTestDataset(t)
	_, param := d.RunTask(Task{Variant: typelang.VariantLSW}, nil)
	_, ret := d.RunTask(Task{Variant: typelang.VariantLSW, Return: true}, nil)
	p := &Predictor{Param: param, Return: ret, Opts: d.Cfg.Extract}

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := SavePredictor(p, path); err != nil {
		t.Fatalf("SavePredictor: %v", err)
	}
	got, err := LoadPredictor(path)
	if err != nil {
		t.Fatalf("LoadPredictor: %v", err)
	}
	if got.Param == nil || got.Return == nil {
		t.Fatal("loaded predictor missing models")
	}
	src := []string{"i32", "<begin>", "local.get", "<param>", ";", "i32.load8_s"}
	if !reflect.DeepEqual(p.Param.Predict(src, 3), got.Param.Predict(src, 3)) {
		t.Error("param predictions differ after round trip")
	}
	if !reflect.DeepEqual(p.Return.Predict(src, 3), got.Return.Predict(src, 3)) {
		t.Error("return predictions differ after round trip")
	}
}

func TestLoadPredictorMissingFile(t *testing.T) {
	if _, err := LoadPredictor("/nonexistent/model.bin"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadTrainedGarbage(t *testing.T) {
	if _, err := LoadTrained(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage accepted")
	}
}
