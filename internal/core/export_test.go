package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/split"
	"repro/internal/typelang"
)

func TestExportImportJSONL(t *testing.T) {
	d := buildTestDataset(t)
	var buf bytes.Buffer
	if err := d.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(d.Samples) {
		t.Fatalf("exported %d lines for %d samples", lines, len(d.Samples))
	}
	recs, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(d.Samples) {
		t.Fatalf("imported %d records", len(recs))
	}
	r := recs[0]
	if r.Package == "" || r.LowType == "" || len(r.Input) == 0 {
		t.Errorf("record fields empty: %+v", r)
	}
	if len(r.Types) != 4 {
		t.Errorf("record has %d variant labels, want 4", len(r.Types))
	}
	// Labels are valid type sequences in the Lsw variant.
	lsw := r.Types[typelang.VariantLSW.String()]
	if _, err := typelang.Parse(lsw); err != nil {
		t.Errorf("Lsw label %v does not parse: %v", lsw, err)
	}

	// Pair realization matches the in-memory realize path in count.
	srcs, tgts := PairsFromRecords(recs, typelang.VariantLSW, false, split.Train)
	inMem := d.realize(Task{Variant: typelang.VariantLSW}, split.Train)
	if len(srcs) != len(inMem) || len(tgts) != len(inMem) {
		t.Errorf("records gave %d train pairs, in-memory %d", len(srcs), len(inMem))
	}
}

func TestImportJSONLGarbage(t *testing.T) {
	if _, err := ImportJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}
