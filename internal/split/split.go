// Package split assigns corpus packages to train/validation/test portions
// and applies the per-package sample cap, as in Section 5 of the paper:
// the dataset is split by original source package (never by function or
// binary, to prevent leakage between portions), with 96% of packages for
// training and 2% each for validation and testing.
package split

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Part identifies a dataset portion.
type Part int

// The three dataset portions.
const (
	Train Part = iota
	Valid
	Test
)

// String returns "train", "valid", or "test".
func (p Part) String() string {
	switch p {
	case Train:
		return "train"
	case Valid:
		return "valid"
	case Test:
		return "test"
	}
	return fmt.Sprintf("part(%d)", int(p))
}

// Fractions holds the split proportions; they must sum to at most 1, with
// the remainder going to Train.
type Fractions struct {
	Valid float64
	Test  float64
}

// PaperFractions returns the paper's 96/2/2 split.
func PaperFractions() Fractions { return Fractions{Valid: 0.02, Test: 0.02} }

// ByPackage deterministically assigns each package to a portion based on a
// keyed hash of its name: stable across runs, independent of package
// order, and guaranteed to put all binaries of a package in one portion.
// It guarantees at least one package each in Valid and Test when there are
// at least three packages.
func ByPackage(pkgs []string, seed uint64, f Fractions) map[string]Part {
	out := make(map[string]Part, len(pkgs))
	// Order packages by keyed hash, then cut the ordered list: this makes
	// the *fractions* exact instead of merely expected.
	type ranked struct {
		name string
		key  uint64
	}
	rs := make([]ranked, 0, len(pkgs))
	for _, p := range pkgs {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", seed, p)
		rs = append(rs, ranked{name: p, key: h.Sum64()})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].key != rs[j].key {
			return rs[i].key < rs[j].key
		}
		return rs[i].name < rs[j].name
	})
	nValid := int(float64(len(rs)) * f.Valid)
	nTest := int(float64(len(rs)) * f.Test)
	if len(rs) >= 3 {
		if nValid == 0 {
			nValid = 1
		}
		if nTest == 0 {
			nTest = 1
		}
	}
	for i, r := range rs {
		switch {
		case i < nValid:
			out[r.name] = Valid
		case i < nValid+nTest:
			out[r.name] = Test
		default:
			out[r.name] = Train
		}
	}
	return out
}

// CapPerPackage limits the number of samples per package to the size of
// the second-largest package, so no single package dominates the dataset
// (Section 5). keyOf extracts the package of a sample; the returned slice
// preserves input order.
func CapPerPackage[S any](samples []S, keyOf func(S) string) []S {
	counts := map[string]int{}
	for _, s := range samples {
		counts[keyOf(s)]++
	}
	if len(counts) < 2 {
		return samples
	}
	first, second := 0, 0
	for _, c := range counts {
		if c > first {
			first, second = c, first
		} else if c > second {
			second = c
		}
	}
	cap := second
	taken := map[string]int{}
	out := samples[:0:0]
	for _, s := range samples {
		k := keyOf(s)
		if taken[k] >= cap {
			continue
		}
		taken[k]++
		out = append(out, s)
	}
	return out
}
