package split

import (
	"fmt"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pkg-%d", i)
	}
	return out
}

func TestByPackageFractions(t *testing.T) {
	pkgs := names(200)
	parts := ByPackage(pkgs, 7, PaperFractions())
	counts := map[Part]int{}
	for _, p := range parts {
		counts[p]++
	}
	if counts[Valid] != 4 || counts[Test] != 4 {
		t.Errorf("valid=%d test=%d, want 4/4 of 200", counts[Valid], counts[Test])
	}
	if counts[Train] != 192 {
		t.Errorf("train=%d, want 192", counts[Train])
	}
}

func TestByPackageDeterministicAndOrderIndependent(t *testing.T) {
	pkgs := names(50)
	a := ByPackage(pkgs, 1, PaperFractions())
	// Reversed order must give the same assignment.
	rev := make([]string, len(pkgs))
	for i, p := range pkgs {
		rev[len(pkgs)-1-i] = p
	}
	b := ByPackage(rev, 1, PaperFractions())
	for _, p := range pkgs {
		if a[p] != b[p] {
			t.Fatalf("assignment of %s depends on input order", p)
		}
	}
	// Different seed gives a different assignment (almost surely).
	c := ByPackage(pkgs, 2, PaperFractions())
	same := true
	for _, p := range pkgs {
		if a[p] != c[p] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical splits")
	}
}

func TestSmallCorpusGetsAllParts(t *testing.T) {
	parts := ByPackage(names(5), 3, PaperFractions())
	counts := map[Part]int{}
	for _, p := range parts {
		counts[p]++
	}
	if counts[Valid] == 0 || counts[Test] == 0 || counts[Train] == 0 {
		t.Errorf("small corpus missing a part: %v", counts)
	}
}

func TestPartString(t *testing.T) {
	if Train.String() != "train" || Valid.String() != "valid" || Test.String() != "test" {
		t.Error("Part names wrong")
	}
}

func TestCapPerPackage(t *testing.T) {
	type s struct{ pkg string }
	var samples []s
	for i := 0; i < 100; i++ {
		samples = append(samples, s{"big"})
	}
	for i := 0; i < 10; i++ {
		samples = append(samples, s{"mid"})
	}
	for i := 0; i < 3; i++ {
		samples = append(samples, s{"small"})
	}
	capped := CapPerPackage(samples, func(x s) string { return x.pkg })
	counts := map[string]int{}
	for _, x := range capped {
		counts[x.pkg]++
	}
	// Cap = size of second-largest package = 10.
	if counts["big"] != 10 || counts["mid"] != 10 || counts["small"] != 3 {
		t.Errorf("counts after cap = %v", counts)
	}
}

func TestCapSinglePackageUnchanged(t *testing.T) {
	type s struct{ pkg string }
	samples := []s{{"only"}, {"only"}, {"only"}}
	if got := CapPerPackage(samples, func(x s) string { return x.pkg }); len(got) != 3 {
		t.Errorf("single package capped: %d", len(got))
	}
}

func TestQuickEveryPackageAssigned(t *testing.T) {
	f := func(n uint8, seed uint64) bool {
		pkgs := names(int(n%100) + 3)
		parts := ByPackage(pkgs, seed, PaperFractions())
		if len(parts) != len(pkgs) {
			return false
		}
		for _, p := range pkgs {
			if _, ok := parts[p]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
