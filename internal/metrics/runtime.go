// Runtime metrics: thread-safe counters, gauges, and latency histograms
// with a plain-text exposition format, used by long-lived processes (the
// prediction server) to report operational health. These complement the
// paper-evaluation measures in this package (Accuracy, Distribution),
// which score model quality offline.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set assigns the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, plus a sum
// and a count, in the style of a Prometheus histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []int64   // one per bound, non-cumulative
	inf    int64     // observations above the last bound
	sum    float64
	n      int64
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// cache hits through multi-second model inference.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil uses DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b))}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-timing idiom shared by the server handlers and the dataset
// pipeline stages.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of the q-quantile (0..1) assuming
// observations sit at their bucket's upper bound; useful for coarse p50/p99
// reporting without storing samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// metricKind tags a registered metric for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type registered struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...}; empty for unlabeled series
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Labels attaches dimensions to a metric series: the same metric name
// may be registered once per distinct label set (the registry's
// per-model serving series use {model="..."}). Rendered sorted by key so
// a label set has one canonical form.
type Labels map[string]string

// render returns the exposition form `{k="v",...}`, keys sorted; empty
// for no labels.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, k...)
		b = append(b, '=')
		b = strconv.AppendQuote(b, l[k])
	}
	b = append(b, '}')
	return string(b)
}

// Registry holds named metrics and renders them in a Prometheus-compatible
// plain-text format. Registration order is preserved in the output.
type Registry struct {
	mu      sync.Mutex
	metrics []registered
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(m registered) {
	r.mu.Lock()
	defer r.mu.Unlock()
	series := m.name + m.labels
	if r.names[series] {
		panic("metrics: duplicate metric " + series)
	}
	r.names[series] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterLabeled(name, help, nil)
}

// NewCounterLabeled registers and returns a counter carrying a label set.
// The same name may be registered once per distinct label set; re-using
// a (name, labels) pair panics like any duplicate registration.
func (r *Registry) NewCounterLabeled(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(registered{name: name, help: help, labels: labels.render(), kind: kindCounter, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeLabeled(name, help, nil)
}

// NewGaugeLabeled registers and returns a gauge carrying a label set.
func (r *Registry) NewGaugeLabeled(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(registered{name: name, help: help, labels: labels.render(), kind: kindGauge, g: g})
	return g
}

// NewHistogram registers and returns a histogram over the given upper
// bounds (nil = DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.NewHistogramLabeled(name, help, bounds, nil)
}

// NewHistogramLabeled registers and returns a histogram carrying a label
// set.
func (r *Registry) NewHistogramLabeled(name, help string, bounds []float64, labels Labels) *Histogram {
	h := NewHistogram(bounds)
	r.register(registered{name: name, help: help, labels: labels.render(), kind: kindHistogram, h: h})
	return h
}

// WriteTo renders every registered metric in exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := append([]registered(nil), r.metrics...)
	r.mu.Unlock()
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	headered := map[string]bool{}
	for _, m := range ms {
		// HELP/TYPE describe the metric name once, however many label
		// sets it was registered under.
		if !headered[m.name] {
			headered[m.name] = true
			if m.help != "" {
				if err := emit("# HELP %s %s\n", m.name, m.help); err != nil {
					return total, err
				}
			}
			if err := emit("# TYPE %s %s\n", m.name, m.kind.String()); err != nil {
				return total, err
			}
		}
		switch m.kind {
		case kindCounter:
			if err := emit("%s%s %d\n", m.name, m.labels, m.c.Value()); err != nil {
				return total, err
			}
		case kindGauge:
			if err := emit("%s%s %d\n", m.name, m.labels, m.g.Value()); err != nil {
				return total, err
			}
		case kindHistogram:
			m.h.mu.Lock()
			bounds := append([]float64(nil), m.h.bounds...)
			counts := append([]int64(nil), m.h.counts...)
			inf, sum, n := m.h.inf, m.h.sum, m.h.n
			m.h.mu.Unlock()
			var cum int64
			for i, ub := range bounds {
				cum += counts[i]
				if err := emit("%s_bucket%s %d\n", m.name, withLE(m.labels, formatBound(ub)), cum); err != nil {
					return total, err
				}
			}
			cum += inf
			if err := emit("%s_bucket%s %d\n%s_sum%s %g\n%s_count%s %d\n",
				m.name, withLE(m.labels, "+Inf"), cum, m.name, m.labels, sum, m.name, m.labels, n); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// withLE merges the le bucket label into a pre-rendered label set.
func withLE(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
