// Runtime metrics: thread-safe counters, gauges, and latency histograms
// with a plain-text exposition format, used by long-lived processes (the
// prediction server) to report operational health. These complement the
// paper-evaluation measures in this package (Accuracy, Distribution),
// which score model quality offline.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set assigns the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, plus a sum
// and a count, in the style of a Prometheus histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []int64   // one per bound, non-cumulative
	inf    int64     // observations above the last bound
	sum    float64
	n      int64
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// cache hits through multi-second model inference.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// NewHistogram builds a histogram over the given ascending upper bounds;
// nil uses DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b))}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-timing idiom shared by the server handlers and the dataset
// pipeline stages.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of the q-quantile (0..1) assuming
// observations sit at their bucket's upper bound; useful for coarse p50/p99
// reporting without storing samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// metricKind tags a registered metric for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type registered struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in a Prometheus-compatible
// plain-text format. Registration order is preserved in the output.
type Registry struct {
	mu      sync.Mutex
	metrics []registered
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(m registered) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic("metrics: duplicate metric " + m.name)
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(registered{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(registered{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// NewHistogram registers and returns a histogram over the given upper
// bounds (nil = DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(registered{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// WriteTo renders every registered metric in exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := append([]registered(nil), r.metrics...)
	r.mu.Unlock()
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, m := range ms {
		if m.help != "" {
			if err := emit("# HELP %s %s\n", m.name, m.help); err != nil {
				return total, err
			}
		}
		switch m.kind {
		case kindCounter:
			if err := emit("# TYPE %s counter\n%s %d\n", m.name, m.name, m.c.Value()); err != nil {
				return total, err
			}
		case kindGauge:
			if err := emit("# TYPE %s gauge\n%s %d\n", m.name, m.name, m.g.Value()); err != nil {
				return total, err
			}
		case kindHistogram:
			if err := emit("# TYPE %s histogram\n", m.name); err != nil {
				return total, err
			}
			m.h.mu.Lock()
			bounds := append([]float64(nil), m.h.bounds...)
			counts := append([]int64(nil), m.h.counts...)
			inf, sum, n := m.h.inf, m.h.sum, m.h.n
			m.h.mu.Unlock()
			var cum int64
			for i, ub := range bounds {
				cum += counts[i]
				if err := emit("%s_bucket{le=%q} %d\n", m.name, formatBound(ub), cum); err != nil {
					return total, err
				}
			}
			cum += inf
			if err := emit("%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				m.name, cum, m.name, sum, m.name, n); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
