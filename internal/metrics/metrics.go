// Package metrics implements the paper's evaluation measures (Section
// 6.3): perfect-match accuracy within the top-1 and top-5 predictions, the
// Type Prefix Score (mean length of the common prefix between prediction
// and ground truth), and the normalized entropy H/Hmax used to compare
// type distributions (Section 6.2, Table 4).
package metrics

import (
	"math"

	"repro/internal/typelang"
)

// Accuracy accumulates top-k exact-match accuracy and the Type Prefix
// Score over a test set.
type Accuracy struct {
	n          int
	top1, top5 int
	tpsSum     int
}

// Add records one sample's ranked predictions against the ground truth.
func (a *Accuracy) Add(preds [][]string, truth []string) {
	a.n++
	if len(preds) > 0 {
		a.tpsSum += typelang.CommonPrefixLen(preds[0], truth)
		if equalTokens(preds[0], truth) {
			a.top1++
		}
	}
	limit := len(preds)
	if limit > 5 {
		limit = 5
	}
	for _, p := range preds[:limit] {
		if equalTokens(p, truth) {
			a.top5++
			break
		}
	}
}

func equalTokens(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds another accumulator into this one, as if every sample b
// recorded had been Added here. Per-binary evaluations (the ingest
// harness) score each binary independently and merge into a corpus-wide
// summary.
func (a *Accuracy) Merge(b *Accuracy) {
	a.n += b.n
	a.top1 += b.top1
	a.top5 += b.top5
	a.tpsSum += b.tpsSum
}

// N returns the number of samples recorded.
func (a *Accuracy) N() int { return a.n }

// Top1 returns the fraction of samples whose first prediction matched
// exactly.
func (a *Accuracy) Top1() float64 { return frac(a.top1, a.n) }

// Top5 returns the fraction of samples with an exact match in the top 5.
func (a *Accuracy) Top5() float64 { return frac(a.top5, a.n) }

// TPS returns the mean Type Prefix Score: the average number of leading
// type tokens the top prediction gets right before diverging.
func (a *Accuracy) TPS() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.tpsSum) / float64(a.n)
}

func frac(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Distribution summarizes a realized type distribution.
type Distribution struct {
	counts map[string]int
	total  int
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: map[string]int{}}
}

// Add records one realized type (by its canonical key).
func (d *Distribution) Add(key string) {
	d.counts[key]++
	d.total++
}

// Unique returns |L|: the number of distinct realized types.
func (d *Distribution) Unique() int { return len(d.counts) }

// Total returns the number of samples.
func (d *Distribution) Total() int { return d.total }

// NormalizedEntropy returns H / Hmax where Hmax = log2(|L|); 0 for
// degenerate distributions. A uniform distribution scores 1.
func (d *Distribution) NormalizedEntropy() float64 {
	if len(d.counts) <= 1 || d.total == 0 {
		return 0
	}
	h := 0.0
	for _, n := range d.counts {
		p := float64(n) / float64(d.total)
		h -= p * math.Log2(p)
	}
	return h / math.Log2(float64(len(d.counts)))
}

// Top returns the k most frequent types with their share of the total,
// most frequent first (ties broken lexicographically).
func (d *Distribution) Top(k int) []TypeShare {
	out := make([]TypeShare, 0, len(d.counts))
	for key, n := range d.counts {
		out = append(out, TypeShare{Type: key, Count: n, Share: float64(n) / float64(d.total)})
	}
	sortShares(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TypeShare is one row of a type-distribution table.
type TypeShare struct {
	Type  string
	Count int
	Share float64
}

func sortShares(s []TypeShare) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			a, b := s[j-1], s[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Type <= b.Type) {
				break
			}
			s[j-1], s[j] = b, a
		}
	}
}
