package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-2.605) > 1e-9 {
		t.Errorf("sum = %g, want 2.605", got)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Errorf("p50 = %g, want 0.1", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 = %g, want +Inf", q)
	}
	if q := h.Quantile(0.2); q != 0.01 {
		t.Errorf("p20 = %g, want 0.01", q)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveSince(time.Now().Add(-50 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	// ~50ms elapsed: the sum must be positive and well under a second.
	if s := h.Sum(); s <= 0 || s >= 1 {
		t.Errorf("sum = %g, want ~0.05", s)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	g := r.NewGauge("in_flight", "")
	h := r.NewHistogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	c.Add(3)
	g.Set(2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 3",
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Gauge registered without help text must not emit a HELP line.
	if strings.Contains(out, "# HELP in_flight") {
		t.Errorf("unexpected HELP line for help-less metric:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x", "")
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(j) / 1000)
			}
			var sb strings.Builder
			r.WriteTo(&sb)
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("counter = %d, want 16000", c.Value())
	}
	if h.Count() != 16000 {
		t.Errorf("histogram count = %d, want 16000", h.Count())
	}
}
