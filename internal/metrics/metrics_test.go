package metrics

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	var a Accuracy
	truth := []string{"pointer", "struct"}
	// Exact top-1.
	a.Add([][]string{{"pointer", "struct"}}, truth)
	// Wrong top-1, right at rank 3.
	a.Add([][]string{{"pointer", "class"}, {"unknown"}, {"pointer", "struct"}}, truth)
	// Entirely wrong.
	a.Add([][]string{{"primitive", "int", "32"}}, truth)
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Top1(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Top1 = %g", got)
	}
	if got := a.Top5(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Top5 = %g", got)
	}
	// TPS: 2 (exact) + 1 (pointer) + 0 = 3; mean 1.
	if got := a.TPS(); math.Abs(got-1) > 1e-12 {
		t.Errorf("TPS = %g", got)
	}
}

func TestAccuracyBeyondFiveIgnored(t *testing.T) {
	var a Accuracy
	truth := []string{"x"}
	preds := [][]string{{"a"}, {"b"}, {"c"}, {"d"}, {"e"}, {"x"}}
	a.Add(preds, truth)
	if a.Top5() != 0 {
		t.Error("rank-6 match must not count toward top-5")
	}
}

func TestAccuracyEmptyPreds(t *testing.T) {
	var a Accuracy
	a.Add(nil, []string{"x"})
	if a.Top1() != 0 || a.Top5() != 0 || a.TPS() != 0 {
		t.Error("empty predictions should score zero")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 80; i++ {
		d.Add("pointer class")
	}
	for i := 0; i < 15; i++ {
		d.Add("primitive int 32")
	}
	for i := 0; i < 5; i++ {
		d.Add("pointer struct")
	}
	if d.Unique() != 3 || d.Total() != 100 {
		t.Fatalf("unique=%d total=%d", d.Unique(), d.Total())
	}
	top := d.Top(2)
	if len(top) != 2 || top[0].Type != "pointer class" || top[0].Share != 0.8 {
		t.Errorf("Top = %+v", top)
	}
	h := d.NormalizedEntropy()
	if h <= 0 || h >= 1 {
		t.Errorf("skewed entropy = %g, want in (0,1)", h)
	}
	// Uniform distribution approaches 1.
	u := NewDistribution()
	for i := 0; i < 99; i++ {
		u.Add(string(rune('a' + i%3)))
	}
	if got := u.NormalizedEntropy(); math.Abs(got-1) > 1e-9 {
		t.Errorf("uniform entropy = %g", got)
	}
	// Degenerate cases.
	one := NewDistribution()
	one.Add("only")
	if one.NormalizedEntropy() != 0 {
		t.Error("single-type entropy should be 0")
	}
	if NewDistribution().NormalizedEntropy() != 0 {
		t.Error("empty entropy should be 0")
	}
}
