// Command dwarfdump prints the DWARF debugging information embedded in a
// WebAssembly binary as a DIE tree, and optionally the high-level type of
// every function signature element in the paper's type language.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

func main() {
	log.SetFlags(0)
	types := flag.Bool("types", false, "also print each signature element's high-level type")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: dwarfdump [-types] file.{wasm,c}")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var m *wasm.Module
	if strings.HasSuffix(path, ".c") {
		obj, err := cc.Compile(string(data), cc.Options{FileName: path, Debug: true})
		if err != nil {
			log.Fatal(err)
		}
		m = obj.Module
	} else {
		d, err := wasm.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		m = d.Module
	}
	secs, err := dwarf.Extract(m)
	if err != nil {
		log.Fatal(err)
	}
	cu, err := dwarf.Read(secs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cu.Dump())
	if !*types {
		return
	}
	fmt.Println("\nhigh-level types (Lsw, all names):")
	for _, sub := range cu.FindAll(dwarf.TagSubprogram) {
		fmt.Printf("  %s:\n", sub.Name())
		for i, p := range sub.FindAll(dwarf.TagFormalParameter) {
			t := typelang.FromDWARF(p.TypeRef(), typelang.AllNames())
			fmt.Printf("    param%d %-12s %s\n", i, "("+p.Name()+")", t)
		}
		if rt := sub.TypeRef(); rt != nil {
			fmt.Printf("    return %-12s %s\n", "", typelang.FromDWARF(rt, typelang.AllNames()))
		}
	}
}
