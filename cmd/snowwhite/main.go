// Command snowwhite runs the SnowWhite type-prediction pipeline end to
// end: dataset construction and statistics, per-task training and
// evaluation (Table 5), interactive prediction on compiled binaries, and a
// long-lived prediction service.
//
// Usage:
//
//	snowwhite stats   [-packages N] [-j N]               dataset stats + Tables 2-4
//	snowwhite eval    [-packages N] [-epochs N] [-task T] [-precision f64|f32] [-cpuprofile F] [-memprofile F] Table 5 / Figure 4
//	snowwhite train   [-packages N] [-j N] [-encoder bilstm|transformer] [-checkpoint F] -out model.bin
//
// The -j flag bounds the worker pools of the dataset pipeline, training
// shards, validation scoring, and test-set evaluation (0 = NumCPU); any
// worker count produces byte-identical datasets, trained weights, losses,
// and predictions. -encoder selects the model architecture for newly
// trained models (bilstm, the paper's, is the default; transformer is the
// self-attention alternative behind the same interface) — saved models
// record their architecture, so the flag is never needed at load time.
// `snowwhite train`
// writes a checkpoint after every epoch (default <out>.ckpt) and, when
// re-launched with the same flags, resumes from it instead of starting
// over; the file is removed once the model is saved.
//
//	snowwhite predict {-model model.bin | -packages N} -file prog.c
//	snowwhite ingest  {-model model.bin | -packages N} {-file bin.wasm | -dir DIR} [-eval] [-k N] [-j N] [-precision f64|f32] [-out report.json]
//	snowwhite serve   {-model model.bin | -packages N} [-addr :8642] [-batch N] [-batch-wait D] [-fast-math] [-fast-model model.qbin] [-f32] [-f32-model model.qbin] [-pprof-addr :6060] [-cache-file cache.jsonl] [-add-model name=path...]
//	snowwhite bench-serve -addr host:port -file bin.wasm [-qps N] [-duration D] [-sweep "10,50,100"] [-out BENCH_predict.json]
//	snowwhite export  -model model.bin -out model.qbin [-quantize int8|f32]
//	snowwhite acctest {-model model.bin | -packages N} -dir DIR [-quantize int8|f32] [-fast-model model.qbin] [-precision f64|f32] [-k N] [-budget 0.99]
//	snowwhite table1                                      Table 1
//
// `snowwhite ingest` accepts arbitrary MVP wasm binaries — unknown and
// custom sections are skipped with per-section diagnostics, malformed
// tails degrade gracefully — and emits a JSON report: per-function
// parameter/return type predictions with normalized beam confidences and
// name provenance (dwarf > names section > export > synthesized). With
// -eval, embedded DWARF becomes ground truth: the binary is stripped,
// predictions are scored against the DWARF-derived labels, and the report
// gains per-element truth ranks plus an accuracy summary. -dir walks a
// directory through a bounded worker pool; output is byte-identical at
// any -j.
//
// `snowwhite serve` coalesces concurrent prediction queries into batched
// beam decodes: up to -batch queries (default 8) share one decoder GEMM
// per step, and a non-full batch waits at most -batch-wait (default 2ms)
// for stragglers; a lone request never waits. -batch 1 disables batching.
// With -fast-math the server additionally loads a fast-math engine
// (quantized weights + fused-rounding inference kernels) that answers
// requests opting in with fast=true; the engine comes from -fast-model
// when given, otherwise from an in-memory int8 quantization of the
// primary model. -f32 (or -f32-model) likewise serves a single-precision
// engine — float32 weights, f32 tapes, and 8-lane kernels — to requests
// opting in with precision=f32; its in-memory form is the f32
// quantization of the primary model loaded straight into float32
// storage, halving that engine's resident weights. -pprof-addr exposes
// net/http/pprof on a separate listener (off by default).
//
// The server is a multi-model registry: -add-model registers further
// models (POST /v1/models/{name}/predict routes to them; /v1/predict
// serves the primary), the /v1/models admin API loads, swaps, and removes
// models at runtime, and SIGHUP hot-swaps every disk-backed model with
// zero downtime — in-flight decodes on the old weights drain to
// completion while new requests already run on the new ones. With
// -cache-file the shared prediction cache persists across restarts: the
// log replays at startup (warm start) and compacts to a snapshot on
// graceful shutdown. `snowwhite bench-serve` drives a running server with
// an open-loop load generator (Poisson-less fixed-rate arrivals at -qps)
// and reports p50/p95/p99 latency, throughput, and cache hit rates, with
// -sweep for saturation curves; results merge into BENCH_predict.json.
//
// `snowwhite export` converts a trained full-precision predictor into
// the quantized on-disk format (int8 affine per matrix, or float32).
// Quantized files load anywhere a model file is accepted — the magic
// prefix routes them to the fast-math loader automatically.
//
// `snowwhite acctest` is the accuracy-budget gate: it extracts every
// predictable signature element from the .wasm binaries under -dir,
// decodes them with both the full-precision reference and the
// quantized/fast-math candidate, and fails (exit 1) unless the
// candidate's top-1 prediction falls within the reference's top-k on at
// least -budget of the queries.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	rpprof "runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/accbudget"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/seq2seq"
	"repro/internal/server"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = runStats(args)
	case "eval":
		err = runEval(args)
	case "train":
		err = runTrain(args)
	case "predict":
		err = runPredict(args)
	case "ingest":
		err = runIngest(args)
	case "serve":
		err = runServe(args)
	case "bench-serve":
		err = runBenchServe(args)
	case "export":
		err = runExport(args)
	case "acctest":
		err = runAcctest(args)
	case "table1":
		fmt.Print(core.Table1())
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snowwhite:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: snowwhite {stats|eval|train|predict|ingest|serve|bench-serve|export|acctest|table1} [flags]")
}

type commonOpts struct {
	packages *int
	epochs   *int
	seed     *int64
	testFrac *float64
	jobs     *int
	encoder  *string
}

func commonFlags(fs *flag.FlagSet) commonOpts {
	return commonOpts{
		packages: fs.Int("packages", 120, "number of synthetic packages"),
		epochs:   fs.Int("epochs", 3, "training epochs"),
		seed:     fs.Int64("seed", 1, "corpus seed"),
		testFrac: fs.Float64("testfrac", 0.02, "validation/test package fraction (paper: 0.02)"),
		jobs:     fs.Int("j", 0, "worker pool size for the dataset pipeline, training, and evaluation (0 = NumCPU); any value produces byte-identical output"),
		encoder:  fs.String("encoder", "bilstm", "encoder architecture for newly trained models: bilstm (the paper's) or transformer; saved models carry their own"),
	}
}

func (o commonOpts) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = *o.packages
	cfg.Corpus.Seed = *o.seed
	cfg.Model.Epochs = *o.epochs
	cfg.Split.Valid = *o.testFrac
	cfg.Split.Test = *o.testFrac
	cfg.Parallelism = *o.jobs
	enc, err := seq2seq.ParseEncoder(*o.encoder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snowwhite:", err)
		os.Exit(2)
	}
	cfg.Model.Encoder = enc
	return cfg
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	opts := commonFlags(fs)
	export := fs.String("export", "", "also export the dataset as JSONL to this file")
	fs.Parse(args)
	cfg := opts.config()
	d, err := core.BuildDataset(cfg, logLine)
	if err != nil {
		return err
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		if err := d.ExportJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logLine(fmt.Sprintf("exported %d samples to %s", len(d.Samples), *export))
	}
	fmt.Println()
	fmt.Println(d.Section5Stats())
	fmt.Println(d.Table2(10))
	fmt.Println(d.Table3(8))
	fmt.Println(core.FormatTable4(d.Table4()))
	return nil
}

// profileOpts wires the shared -cpuprofile/-memprofile flags: CPU
// profiling runs from start() to the returned stop; the heap profile is
// written (after a GC, so it reflects live memory) when stop runs.
type profileOpts struct {
	cpu *string
	mem *string
}

func profileFlags(fs *flag.FlagSet) profileOpts {
	return profileOpts{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

func (o profileOpts) start() (stop func() error, err error) {
	var cpuFile *os.File
	if *o.cpu != "" {
		if cpuFile, err = os.Create(*o.cpu); err != nil {
			return nil, err
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			logLine("wrote CPU profile to " + *o.cpu)
		}
		if *o.mem != "" {
			f, err := os.Create(*o.mem)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := rpprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			logLine("wrote heap profile to " + *o.mem)
		}
		return nil
	}, nil
}

// applyPrecision pins a predictor's task models to the given inference
// engine ("" keeps the default). Training is untouched: precision only
// selects the forward-only tape Predict uses.
func applyPrecision(p *core.Predictor, precision string) error {
	if precision == "" {
		return nil
	}
	for _, tr := range []*core.Trained{p.Param, p.Return} {
		if tr == nil {
			continue
		}
		if err := tr.Model.SetPrecision(precision); err != nil {
			return err
		}
	}
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	opts := commonFlags(fs)
	taskFilter := fs.String("task", "", "substring filter on task names (e.g. \"Lsw / param\")")
	fig4 := fs.Bool("fig4", false, "also print Figure 4 (accuracy by nesting depth)")
	precision := fs.String("precision", "", "inference engine for test-set evaluation (f64 or f32; training always runs f64)")
	prof := profileFlags(fs)
	fs.Parse(args)
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	cfg := opts.config()
	d, err := core.BuildDataset(cfg, logLine)
	if err != nil {
		return err
	}
	var results []*core.TaskResult
	var lswParam, lswReturn *core.TaskResult
	for _, task := range core.Table5Tasks() {
		if *taskFilter != "" && !strings.Contains(task.Name(), *taskFilter) {
			continue
		}
		logLine("training " + task.Name())
		tr, err := d.TrainTask(task, nil, logLine)
		if err != nil {
			return err
		}
		if err := tr.Model.SetPrecision(*precision); err != nil {
			return err
		}
		res := d.EvalTask(task, tr, nil)
		results = append(results, res)
		if task.Variant == typelang.VariantLSW && !task.AblateLowType {
			if task.Return {
				lswReturn = res
			} else {
				lswParam = res
			}
		}
	}
	fmt.Println()
	fmt.Println(core.FormatTable5(results))
	if *fig4 && lswParam != nil && lswReturn != nil {
		fmt.Println(core.FormatFigure4(lswParam, lswReturn))
	}
	return stopProf()
}

// runTrain trains parameter and return models and saves them to a file.
// Training checkpoints after every epoch; a killed run re-launched with
// the same flags resumes from the last checkpoint and converges to the
// same model as an uninterrupted run.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	opts := commonFlags(fs)
	out := fs.String("out", "snowwhite-model.bin", "output model file")
	ckpt := fs.String("checkpoint", "", "training checkpoint file (default <out>.ckpt; \"none\" disables)")
	fs.Parse(args)
	ckptPath := *ckpt
	switch ckptPath {
	case "":
		ckptPath = *out + ".ckpt"
	case "none":
		ckptPath = ""
	}
	p, err := core.TrainPredictorCheckpointed(opts.config(), ckptPath, logLine)
	if err != nil {
		return err
	}
	if err := core.SavePredictor(p, *out); err != nil {
		return err
	}
	logLine("saved predictor to " + *out)
	if ckptPath != "" {
		if err := os.Remove(ckptPath); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// loadOrTrain returns a saved predictor when modelPath is set, otherwise
// trains one from a fresh synthetic dataset. Both on-disk formats load:
// quantized exports come back with fast-math inference enabled.
func loadOrTrain(modelPath string, opts commonOpts) (*core.Predictor, error) {
	if modelPath != "" {
		p, err := core.LoadPredictorAuto(modelPath)
		if err != nil {
			return nil, err
		}
		logLine("loaded predictor from " + modelPath)
		return p, nil
	}
	return core.TrainPredictor(opts.config(), logLine)
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	opts := commonFlags(fs)
	file := fs.String("file", "", "C source file to compile and analyze (or .wasm binary)")
	funcName := fs.String("func", "", "function name (default: all exported)")
	topK := fs.Int("k", 5, "number of predictions per element")
	modelPath := fs.String("model", "", "load a saved predictor instead of training one")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("predict requires -file")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var bin []byte
	if strings.HasSuffix(*file, ".wasm") {
		bin = data
	} else {
		obj, err := cc.Compile(string(data), cc.Options{FileName: *file, Debug: false})
		if err != nil {
			return err
		}
		bin = obj.Binary
	}

	p, err := loadOrTrain(*modelPath, opts)
	if err != nil {
		return err
	}

	// Decode once and strip the DWARF: prediction must run on the module a
	// reverse engineer sees, not on a re-decode of the original bytes.
	m, err := core.DecodeStripped(bin)
	if err != nil {
		return err
	}
	for fi := range m.Funcs {
		name := exportName(m, fi)
		if *funcName != "" && name != *funcName {
			continue
		}
		fmt.Printf("\nfunction %s:\n", name)
		preds, err := p.PredictModule(m, fi, *topK)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(preds))
		for k := range preds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s:\n", k)
			for i, tp := range preds[k] {
				fmt.Printf("    %d. %s\n", i+1, tp.Text)
			}
		}
	}
	return nil
}

// runIngest produces structured prediction reports for real-world wasm
// binaries (one file or a directory tree), optionally scoring against
// embedded DWARF.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	opts := commonFlags(fs)
	file := fs.String("file", "", "one .wasm binary to ingest")
	dir := fs.String("dir", "", "ingest every .wasm under this directory")
	topK := fs.Int("k", 5, "number of ranked predictions per element")
	eval := fs.Bool("eval", false, "score predictions against embedded DWARF (external eval)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	modelPath := fs.String("model", "", "load a saved predictor instead of training one")
	printMetrics := fs.Bool("print-metrics", false, "dump ingest metrics in exposition format to stderr")
	precision := fs.String("precision", "", "inference engine for predictions (f64 or f32)")
	fs.Parse(args)
	if (*file == "") == (*dir == "") {
		return fmt.Errorf("ingest requires exactly one of -file or -dir")
	}

	p, err := loadOrTrain(*modelPath, opts)
	if err != nil {
		return err
	}
	if err := applyPrecision(p, *precision); err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	ing := &ingest.Ingester{Pred: p, K: *topK, Eval: *eval, Metrics: ingest.NewMetrics(reg)}

	var report any
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		report = ing.Binary(filepath.Base(*file), data)
	} else {
		report, err = ing.Dir(*dir, *opts.jobs)
		if err != nil {
			return err
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		logLine("wrote report to " + *out)
	} else {
		os.Stdout.Write(buf)
	}
	if *printMetrics {
		reg.WriteTo(os.Stderr)
	}
	return nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseModelSpec parses one -add-model value:
// name=path[,fast=quantized.qbin][,quantize=int8|f32][,f32=quantized.qbin][,f32-quantize=int8|f32].
func parseModelSpec(spec string) (name string, src server.ModelSource, err error) {
	eq := strings.IndexByte(spec, '=')
	if eq <= 0 {
		return "", src, fmt.Errorf("invalid -add-model %q (want name=path[,fast=F][,quantize=M][,f32=F][,f32-quantize=M])", spec)
	}
	name = spec[:eq]
	parts := strings.Split(spec[eq+1:], ",")
	src.Path = parts[0]
	for _, p := range parts[1:] {
		switch {
		case strings.HasPrefix(p, "fast="):
			src.FastPath = strings.TrimPrefix(p, "fast=")
		case strings.HasPrefix(p, "quantize="):
			src.Quantize = strings.TrimPrefix(p, "quantize=")
		case strings.HasPrefix(p, "f32="):
			src.F32Path = strings.TrimPrefix(p, "f32=")
		case strings.HasPrefix(p, "f32-quantize="):
			src.F32Quantize = strings.TrimPrefix(p, "f32-quantize=")
		default:
			return "", src, fmt.Errorf("invalid -add-model option %q in %q", p, spec)
		}
	}
	if src.Path == "" {
		return "", src, fmt.Errorf("invalid -add-model %q: empty path", spec)
	}
	return name, src, nil
}

// runServe starts the long-lived prediction service: it loads (or trains)
// a default predictor plus any -add-model entries into the multi-model
// registry, serves the /v1 API, hot-swaps every disk-backed model on
// SIGHUP, and drains in-flight work on SIGTERM/SIGINT.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	opts := commonFlags(fs)
	modelPath := fs.String("model", "", "load a saved predictor instead of training one")
	modelName := fs.String("model-name", "default", "registry name for the primary model (the /v1/predict default)")
	addr := fs.String("addr", ":8642", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 4096, "prediction cache entries (negative disables)")
	cacheFile := fs.String("cache-file", "", "persist the prediction cache to this file (replayed at startup, compacted on shutdown)")
	maxBody := fs.Int64("max-body", 8<<20, "maximum upload size in bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request prediction timeout")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	batch := fs.Int("batch", 8, "max queries coalesced per batched beam decode (<=1 disables)")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "max time a non-full batch waits for stragglers")
	fastMath := fs.Bool("fast-math", false, "also serve a fast-math engine for requests with fast=true")
	fastModel := fs.String("fast-model", "", "quantized model file for the fast-math engine (default: in-memory int8 quantization of the primary model; implies -fast-math)")
	quantize := fs.String("quantize", "int8", "quantization mode for the in-memory fast-math engine (int8 or f32)")
	f32 := fs.Bool("f32", false, "also serve a single-precision engine for requests with precision=f32")
	f32Model := fs.String("f32-model", "", "quantized model file for the f32 engine (default: in-memory f32 quantization of the primary model; implies -f32)")
	pprofAddr := fs.String("pprof-addr", "", "expose net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	var addModels multiFlag
	fs.Var(&addModels, "add-model", "register an extra model: name=path[,fast=F][,quantize=M] (repeatable)")
	fs.Parse(args)

	p, err := loadOrTrain(*modelPath, opts)
	if err != nil {
		return err
	}
	defSrc := server.ModelSource{Path: *modelPath}
	var fastPred *core.Predictor
	if *fastModel != "" {
		if fastPred, err = core.LoadQuantizedPredictor(*fastModel); err != nil {
			return err
		}
		defSrc.FastPath = *fastModel
		logLine("loaded fast-math predictor from " + *fastModel)
	} else if *fastMath {
		mode, err := quant.ParseMode(*quantize)
		if err != nil {
			return err
		}
		if fastPred, err = core.QuantizePredictor(p, mode); err != nil {
			return err
		}
		defSrc.Quantize = string(mode)
		logLine(fmt.Sprintf("fast-math engine ready (in-memory %s quantization)", mode))
	}
	var f32Pred *core.Predictor
	if *f32Model != "" {
		if f32Pred, err = core.LoadQuantizedPredictorPrecision(*f32Model, "f32"); err != nil {
			return err
		}
		defSrc.F32Path = *f32Model
		logLine("loaded f32 predictor from " + *f32Model)
	} else if *f32 {
		if f32Pred, err = core.QuantizePredictorPrecision(p, quant.F32, "f32"); err != nil {
			return err
		}
		defSrc.F32Quantize = string(quant.F32)
		logLine("f32 engine ready (in-memory f32 quantization, float32-resident weights)")
	}
	if *pprofAddr != "" {
		// pprof lives on its own mux and listener so profiling endpoints
		// never share a port with the public API.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logLine(fmt.Sprintf("pprof listener failed: %v", err))
			}
		}()
		logLine("pprof listening on " + *pprofAddr)
	}
	srv, err := server.NewWithSource(p, server.Config{
		Addr:           *addr,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		CachePath:      *cacheFile,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		BatchSize:      *batch,
		BatchWait:      *batchWait,
		DefaultModel:   *modelName,
		FastPred:       fastPred,
		F32Pred:        f32Pred,
	}, defSrc)
	if err != nil {
		return err
	}
	for _, spec := range addModels {
		name, src, err := parseModelSpec(spec)
		if err != nil {
			return err
		}
		if err := srv.LoadModel(name, src); err != nil {
			return err
		}
		logLine(fmt.Sprintf("registered model %q from %s", name, src.Path))
	}

	// Signals are trapped before the listener starts, so a SIGTERM that
	// lands as soon as the port answers still drains gracefully.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logLine("serving on " + *addr + " (POST /v1/predict, POST /v1/models/{m}/predict, GET /v1/models, GET /healthz, GET /metrics)")
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Zero-downtime reload: every disk-backed model hot-swaps
				// to freshly loaded weights while requests keep flowing.
				reloaded, err := srv.Reload()
				if err != nil {
					logLine(fmt.Sprintf("reload failed (old versions keep serving): %v", err))
				}
				logLine(fmt.Sprintf("SIGHUP: hot-swapped %d model(s) %v", len(reloaded), reloaded))
				continue
			}
			logLine(fmt.Sprintf("received %s, draining (up to %s)", sig, *drain))
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
			if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			logLine("drained, bye")
			return nil
		case err := <-errc:
			return err
		}
	}
}

// runExport converts a saved full-precision predictor into the
// quantized on-disk format.
func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	modelPath := fs.String("model", "", "saved full-precision predictor to convert")
	out := fs.String("out", "", "output quantized model file")
	quantize := fs.String("quantize", "int8", "quantization mode (int8 or f32)")
	fs.Parse(args)
	if *modelPath == "" || *out == "" {
		return fmt.Errorf("export requires -model and -out")
	}
	mode, err := quant.ParseMode(*quantize)
	if err != nil {
		return err
	}
	p, err := core.LoadPredictor(*modelPath)
	if err != nil {
		return err
	}
	if err := core.ExportQuantized(p, *out, mode); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	logLine(fmt.Sprintf("exported %s predictor to %s (%d bytes)", mode, *out, fi.Size()))
	return nil
}

// runAcctest runs the accuracy-budget gate: the quantized/fast-math
// candidate against the full-precision reference over every predictable
// signature element under -dir. Exit status 1 when the candidate's
// top-k agreement falls below -budget.
func runAcctest(args []string) error {
	fs := flag.NewFlagSet("acctest", flag.ExitOnError)
	opts := commonFlags(fs)
	modelPath := fs.String("model", "", "load a saved full-precision predictor instead of training one")
	dir := fs.String("dir", "", "directory of .wasm evaluation binaries")
	quantize := fs.String("quantize", "int8", "quantization mode for the in-memory candidate (int8 or f32)")
	fastModel := fs.String("fast-model", "", "use this quantized model file as the candidate instead of quantizing in memory")
	precision := fs.String("precision", "", "candidate inference engine: f32 lands the candidate on the single-precision engine (default: fast-math f64)")
	topK := fs.Int("k", 3, "reference beam width the candidate's top-1 must fall within")
	budget := fs.Float64("budget", 0.99, "minimum fraction of queries whose candidate top-1 is in the reference top-k")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("acctest requires -dir")
	}

	ref, err := loadOrTrain(*modelPath, opts)
	if err != nil {
		return err
	}
	var cand *core.Predictor
	if *fastModel != "" {
		if cand, err = core.LoadQuantizedPredictorPrecision(*fastModel, *precision); err != nil {
			return err
		}
		logLine("candidate: quantized predictor " + *fastModel)
	} else {
		mode, err := quant.ParseMode(*quantize)
		if err != nil {
			return err
		}
		if cand, err = core.QuantizePredictorPrecision(ref, mode, *precision); err != nil {
			return err
		}
		engine := "fast-math kernels"
		if *precision == "f32" {
			engine = "f32 engine"
		}
		logLine(fmt.Sprintf("candidate: in-memory %s quantization + %s", mode, engine))
	}

	queries, skipped, err := accbudget.QueriesFromDir(ref, *dir)
	if err != nil {
		return err
	}
	for _, name := range skipped {
		logLine("skipped undecodable binary " + name)
	}
	if len(queries) == 0 {
		return fmt.Errorf("acctest: no queries extracted from %s", *dir)
	}
	logLine(fmt.Sprintf("comparing %d queries at k=%d", len(queries), *topK))
	rep := accbudget.Compare(ref, cand, queries, *topK)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		logLine("wrote report to " + *out)
	} else {
		os.Stdout.Write(buf)
	}
	logLine(fmt.Sprintf("top-1 agreement %.4f, top-%d agreement %.4f (%d/%d)",
		rep.Top1Agreement(), *topK, rep.TopKAgreement(), rep.TopKMatches, rep.Total))
	if !rep.Pass(*budget) {
		return fmt.Errorf("accuracy budget failed: top-%d agreement %.4f < %.4f over %d queries",
			*topK, rep.TopKAgreement(), *budget, rep.Total)
	}
	logLine(fmt.Sprintf("accuracy budget passed (>= %.4f)", *budget))
	return nil
}

func exportName(m *wasm.Module, funcIdx int) string {
	abs := uint32(funcIdx + m.NumImportedFuncs())
	for _, e := range m.Exports {
		if e.Kind == wasm.KindFunc && e.Index == abs {
			return e.Name
		}
	}
	return fmt.Sprintf("func[%d]", funcIdx)
}

func logLine(s string) { fmt.Fprintln(os.Stderr, "[snowwhite]", s) }
