// Command snowwhite runs the SnowWhite type-prediction pipeline end to
// end: dataset construction and statistics, per-task training and
// evaluation (Table 5), and interactive prediction on compiled binaries.
//
// Usage:
//
//	snowwhite stats   [-packages N]                      dataset stats + Tables 2-4
//	snowwhite eval    [-packages N] [-epochs N] [-task T] Table 5 / Figure 4
//	snowwhite train   [-packages N] -out model.bin        train & save models
//	snowwhite predict {-model model.bin | -packages N} -file prog.c
//	snowwhite table1                                      Table 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dwarf"
	"repro/internal/typelang"
	"repro/internal/wasm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = runStats(args)
	case "eval":
		err = runEval(args)
	case "train":
		err = runTrain(args)
	case "predict":
		err = runPredict(args)
	case "table1":
		fmt.Print(core.Table1())
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snowwhite:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: snowwhite {stats|eval|train|predict|table1} [flags]")
}

type commonOpts struct {
	packages *int
	epochs   *int
	seed     *int64
	testFrac *float64
}

func commonFlags(fs *flag.FlagSet) commonOpts {
	return commonOpts{
		packages: fs.Int("packages", 120, "number of synthetic packages"),
		epochs:   fs.Int("epochs", 3, "training epochs"),
		seed:     fs.Int64("seed", 1, "corpus seed"),
		testFrac: fs.Float64("testfrac", 0.02, "validation/test package fraction (paper: 0.02)"),
	}
}

func (o commonOpts) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Corpus.Packages = *o.packages
	cfg.Corpus.Seed = *o.seed
	cfg.Model.Epochs = *o.epochs
	cfg.Split.Valid = *o.testFrac
	cfg.Split.Test = *o.testFrac
	return cfg
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	opts := commonFlags(fs)
	export := fs.String("export", "", "also export the dataset as JSONL to this file")
	fs.Parse(args)
	cfg := opts.config()
	d, err := core.BuildDataset(cfg, logLine)
	if err != nil {
		return err
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		if err := d.ExportJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logLine(fmt.Sprintf("exported %d samples to %s", len(d.Samples), *export))
	}
	fmt.Println()
	fmt.Println(d.Section5Stats())
	fmt.Println(d.Table2(10))
	fmt.Println(d.Table3(8))
	fmt.Println(core.FormatTable4(d.Table4()))
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	opts := commonFlags(fs)
	taskFilter := fs.String("task", "", "substring filter on task names (e.g. \"Lsw / param\")")
	fig4 := fs.Bool("fig4", false, "also print Figure 4 (accuracy by nesting depth)")
	fs.Parse(args)
	cfg := opts.config()
	d, err := core.BuildDataset(cfg, logLine)
	if err != nil {
		return err
	}
	var results []*core.TaskResult
	var lswParam, lswReturn *core.TaskResult
	for _, task := range core.Table5Tasks() {
		if *taskFilter != "" && !strings.Contains(task.Name(), *taskFilter) {
			continue
		}
		logLine("training " + task.Name())
		res, _ := d.RunTask(task, logLine)
		results = append(results, res)
		if task.Variant == typelang.VariantLSW && !task.AblateLowType {
			if task.Return {
				lswReturn = res
			} else {
				lswParam = res
			}
		}
	}
	fmt.Println()
	fmt.Println(core.FormatTable5(results))
	if *fig4 && lswParam != nil && lswReturn != nil {
		fmt.Println(core.FormatFigure4(lswParam, lswReturn))
	}
	return nil
}

// runTrain trains parameter and return models and saves them to a file.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	opts := commonFlags(fs)
	out := fs.String("out", "snowwhite-model.bin", "output model file")
	fs.Parse(args)
	cfg := opts.config()
	d, err := core.BuildDataset(cfg, logLine)
	if err != nil {
		return err
	}
	logLine("training parameter model")
	_, paramModel := d.RunTask(core.Task{Variant: typelang.VariantLSW}, logLine)
	logLine("training return model")
	_, retModel := d.RunTask(core.Task{Variant: typelang.VariantLSW, Return: true}, logLine)
	p := &core.Predictor{Param: paramModel, Return: retModel, Opts: cfg.Extract}
	if err := core.SavePredictor(p, *out); err != nil {
		return err
	}
	logLine("saved predictor to " + *out)
	return nil
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	opts := commonFlags(fs)
	file := fs.String("file", "", "C source file to compile and analyze (or .wasm binary)")
	funcName := fs.String("func", "", "function name (default: all exported)")
	topK := fs.Int("k", 5, "number of predictions per element")
	modelPath := fs.String("model", "", "load a saved predictor instead of training one")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("predict requires -file")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var bin []byte
	if strings.HasSuffix(*file, ".wasm") {
		bin = data
	} else {
		obj, err := cc.Compile(string(data), cc.Options{FileName: *file, Debug: false})
		if err != nil {
			return err
		}
		bin = obj.Binary
	}

	var p *core.Predictor
	if *modelPath != "" {
		var err error
		if p, err = core.LoadPredictor(*modelPath); err != nil {
			return err
		}
		logLine("loaded predictor from " + *modelPath)
	} else {
		cfg := opts.config()
		d, err := core.BuildDataset(cfg, logLine)
		if err != nil {
			return err
		}
		logLine("training parameter model")
		_, paramModel := d.RunTask(core.Task{Variant: typelang.VariantLSW}, logLine)
		logLine("training return model")
		_, retModel := d.RunTask(core.Task{Variant: typelang.VariantLSW, Return: true}, logLine)
		p = &core.Predictor{Param: paramModel, Return: retModel, Opts: cfg.Extract}
	}

	dec, err := wasm.Decode(bin)
	if err != nil {
		return err
	}
	dwarf.Strip(dec.Module) // predict as a reverse engineer would: no DWARF
	m := dec.Module
	for fi := range m.Funcs {
		name := exportName(m, fi)
		if *funcName != "" && name != *funcName {
			continue
		}
		fmt.Printf("\nfunction %s:\n", name)
		preds, err := p.PredictBinary(bin, fi, *topK)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(preds))
		for k := range preds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s:\n", k)
			for i, tp := range preds[k] {
				fmt.Printf("    %d. %s\n", i+1, tp.Text)
			}
		}
	}
	return nil
}

func exportName(m *wasm.Module, funcIdx int) string {
	abs := uint32(funcIdx + m.NumImportedFuncs())
	for _, e := range m.Exports {
		if e.Kind == wasm.KindFunc && e.Index == abs {
			return e.Name
		}
	}
	return fmt.Sprintf("func[%d]", funcIdx)
}

func logLine(s string) { fmt.Fprintln(os.Stderr, "[snowwhite]", s) }
