package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// bench-serve: an open-loop load generator for a running `snowwhite
// serve` instance. Open-loop means arrivals fire at the target rate
// regardless of completions (a ticker spawns one request per interval),
// so queueing delay shows up in the measured latency instead of
// throttling the offered load — the methodology that exposes saturation,
// unlike closed-loop clients whose arrival rate collapses to the
// service rate. A -sweep runs one measurement per target rate to trace
// the saturation curve; -label tags runs (e.g. cold vs warm start) and
// -merge-into folds the results into BENCH_predict.json next to the
// microbenchmarks.

// serveRunResult is one measured load point.
type serveRunResult struct {
	Label        string  `json:"label,omitempty"`
	TargetQPS    float64 `json:"target_qps"`
	DurationSec  float64 `json:"duration_sec"`
	Requests     int     `json:"requests"`
	Failed       int     `json:"failed"`
	AchievedQPS  float64 `json:"achieved_qps"`
	MeanMs       float64 `json:"mean_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	Elements     int     `json:"elements"`
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// benchTarget is everything one request needs.
type benchTarget struct {
	url    string
	body   []byte
	client *http.Client
}

// fire posts one prediction request and reports (latency, elements,
// cacheHits, ok).
func (t *benchTarget) fire() (time.Duration, int, int, bool) {
	start := time.Now()
	resp, err := t.client.Post(t.url, "application/wasm", bytes.NewReader(t.body))
	if err != nil {
		return time.Since(start), 0, 0, false
	}
	defer resp.Body.Close()
	var pr struct {
		Functions []struct {
			Elements map[string]json.RawMessage `json:"elements"`
		} `json:"functions"`
		CacheHits int `json:"cache_hits"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&pr); err != nil || resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return time.Since(start), 0, 0, false
	}
	elems := 0
	for _, f := range pr.Functions {
		elems += len(f.Elements)
	}
	return time.Since(start), elems, pr.CacheHits, true
}

// runLoad drives one open-loop measurement: requests start every 1/qps
// regardless of in-flight count, for the given duration, then every
// outstanding request is awaited.
func runLoad(t *benchTarget, qps float64, duration time.Duration, label string) serveRunResult {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		elements  int
		hits      int
		wg        sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat, elems, h, ok := t.fire()
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lat)
			elements += elems
			hits += h
			if !ok {
				failed++
			}
		}()
	}
	launch() // first arrival at t=0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		launch()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(q*float64(len(latencies)))) - 1
		if i < 0 {
			i = 0
		}
		return ms(latencies[i])
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	res := serveRunResult{
		Label:       label,
		TargetQPS:   qps,
		DurationSec: elapsed,
		Requests:    len(latencies),
		Failed:      failed,
		Elements:    elements,
		CacheHits:   hits,
		P50Ms:       pct(0.50),
		P95Ms:       pct(0.95),
		P99Ms:       pct(0.99),
	}
	if len(latencies) > 0 {
		res.AchievedQPS = float64(len(latencies)) / elapsed
		res.MeanMs = ms(sum) / float64(len(latencies))
		res.MaxMs = ms(latencies[len(latencies)-1])
	}
	if elements > 0 {
		res.CacheHitRate = float64(hits) / float64(elements)
	}
	return res
}

// mergeInto folds the serve results into an existing benchmark JSON file
// (or creates it), under the "serve" key, preserving everything else.
func mergeInto(path string, runs []serveRunResult) error {
	doc := map[string]any{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("bench-serve: %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	// Accumulate across invocations (bench.sh runs cold and warm phases as
	// separate processes): existing runs with the same label are replaced,
	// others are kept.
	var kept []serveRunResult
	if prev, ok := doc["serve"]; ok {
		if buf, err := json.Marshal(prev); err == nil {
			var old []serveRunResult
			if json.Unmarshal(buf, &old) == nil {
				for _, o := range old {
					replaced := false
					for _, n := range runs {
						if o.Label == n.Label && o.TargetQPS == n.TargetQPS {
							replaced = true
							break
						}
					}
					if !replaced {
						kept = append(kept, o)
					}
				}
			}
		}
	}
	doc["serve"] = append(kept, runs...)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runBenchServe measures a running prediction server under open-loop
// load and reports latency percentiles, throughput, and cache hit rate.
func runBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "server address (host:port)")
	file := fs.String("file", "", "wasm binary to post on every request")
	funcSel := fs.String("func", "", "function selector forwarded to the server")
	topK := fs.Int("k", 0, "beam width forwarded to the server (0 = server default)")
	fast := fs.Bool("fast", false, "request the fast-math engine")
	precision := fs.String("precision", "", "request a precision tier (f32 routes to the single-precision engine)")
	model := fs.String("model", "", "route to a named registry model (default: the server's default model)")
	qps := fs.Float64("qps", 20, "target arrival rate (open loop)")
	duration := fs.Duration("duration", 10*time.Second, "measurement length per load point")
	sweep := fs.String("sweep", "", "comma-separated QPS list for a saturation sweep (overrides -qps)")
	label := fs.String("label", "", "tag for this run (e.g. cold, warm)")
	maxFailures := fs.Int("max-failures", -1, "exit 1 if any load point fails more than this many requests (-1 disables)")
	prof := profileFlags(fs)
	mergePath := fs.String("merge-into", "", "merge results into this benchmark JSON file under the \"serve\" key")
	ready := fs.Bool("ready", false, "probe GET /healthz and exit (0 = serving); runs no load and touches no cache entries")
	fs.Parse(args)
	stopProf, err := prof.start()
	if err != nil {
		return err
	}
	if *ready {
		resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + *addr + "/healthz")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench-serve: healthz returned %d", resp.StatusCode)
		}
		return nil
	}
	if *file == "" {
		return fmt.Errorf("bench-serve requires -file")
	}
	body, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	base := "http://" + *addr
	var path string
	if *model != "" {
		path = base + "/v1/models/" + *model + "/predict"
	} else {
		path = base + "/v1/predict"
	}
	params := []string{}
	if *funcSel != "" {
		params = append(params, "func="+*funcSel)
	}
	if *topK > 0 {
		params = append(params, "k="+strconv.Itoa(*topK))
	}
	if *fast {
		params = append(params, "fast=true")
	}
	if *precision != "" {
		params = append(params, "precision="+*precision)
	}
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	t := &benchTarget{url: path, body: body, client: &http.Client{Timeout: 5 * time.Minute}}

	rates := []float64{*qps}
	if *sweep != "" {
		rates = rates[:0]
		for _, s := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("bench-serve: invalid -sweep entry %q", s)
			}
			rates = append(rates, r)
		}
	}

	// Verify reachability via /healthz rather than a throwaway prediction:
	// a preflight decode would prime the cache for the benchmark binary and
	// erase the cold-start signal (every timed request would hit).
	if resp, err := t.client.Get(base + "/healthz"); err != nil {
		return fmt.Errorf("bench-serve: server at %s not answering: %w", *addr, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("bench-serve: healthz at %s returned %d", *addr, resp.StatusCode)
		}
	}

	var runs []serveRunResult
	tooManyFailures := false
	for _, rate := range rates {
		res := runLoad(t, rate, *duration, *label)
		runs = append(runs, res)
		logLine(fmt.Sprintf("qps=%g: %d requests (%d failed) achieved=%.1f/s p50=%.1fms p95=%.1fms p99=%.1fms hit-rate=%.3f",
			rate, res.Requests, res.Failed, res.AchievedQPS, res.P50Ms, res.P95Ms, res.P99Ms, res.CacheHitRate))
		if *maxFailures >= 0 && res.Failed > *maxFailures {
			tooManyFailures = true
		}
	}

	buf, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(append(buf, '\n'))
	if *mergePath != "" {
		if err := mergeInto(*mergePath, runs); err != nil {
			return err
		}
		logLine("merged results into " + *mergePath)
	}
	if tooManyFailures {
		return fmt.Errorf("bench-serve: failed requests exceeded -max-failures %d", *maxFailures)
	}
	return stopProf()
}
