// Command wasm2wat disassembles a WebAssembly binary into a readable
// wat-like listing, similar to the WABT tool of the same name. With -c it
// compiles a C file first (useful for inspecting the output of the
// bundled compiler).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cc"
	"repro/internal/wasm"
)

func main() {
	log.SetFlags(0)
	compile := flag.Bool("c", false, "treat input as C source and compile it first")
	funcIdx := flag.Int("func", -1, "disassemble only this function index")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: wasm2wat [-c] [-func N] file.{wasm,c}")
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var bin []byte
	if *compile || strings.HasSuffix(path, ".c") {
		obj, err := cc.Compile(string(data), cc.Options{FileName: path, Debug: true})
		if err != nil {
			log.Fatal(err)
		}
		bin = obj.Binary
	} else {
		bin = data
	}
	d, err := wasm.Decode(bin)
	if err != nil {
		log.Fatal(err)
	}
	if *funcIdx >= 0 {
		text, err := wasm.DisassembleFunction(d.Module, *funcIdx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		return
	}
	fmt.Print(wasm.Disassemble(d.Module))
}
