// Command genquantfixture regenerates the checked-in fuzz corpus for
// FuzzQuantRoundTrip under internal/quant/testdata/fuzz: seeds whose
// byte layout comes from a real trained checkpoint, so mutation starts
// from production-shaped inputs instead of synthetic toys. It trains
// the same tiny deterministic predictor the test suites use (or loads
// one with -model), quantizes its smallest parameter matrices in both
// modes, and writes them in the `go test fuzz v1` corpus format.
//
// Training is deterministic, so re-running this produces byte-identical
// corpus files.
//
// Usage: go run ./scripts/genquantfixture [-model model.bin]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/quant"
)

// maxSeedElems bounds how many weights one corpus seed carries: fuzzing
// mutates whole inputs, so multi-megabyte seeds would slow every
// iteration without covering more of the format.
const maxSeedElems = 4096

func main() {
	modelPath := ""
	if len(os.Args) == 3 && os.Args[1] == "-model" {
		modelPath = os.Args[2]
	} else if len(os.Args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: genquantfixture [-model model.bin]")
		os.Exit(2)
	}

	var p *core.Predictor
	var err error
	if modelPath != "" {
		p, err = core.LoadPredictor(modelPath)
	} else {
		cfg := core.DefaultConfig()
		cfg.Corpus.Packages = 6
		cfg.Model.Epochs = 1
		cfg.Parallelism = 2
		p, err = core.TrainPredictor(cfg, func(s string) { fmt.Fprintln(os.Stderr, "[genquantfixture]", s) })
	}
	check(err)

	// Smallest matrices first: real layouts (biases, gate blocks, the
	// combine projection) at fuzz-friendly sizes.
	params := p.Param.Model.Params()
	sort.SliceStable(params, func(i, j int) bool { return len(params[i].W) < len(params[j].W) })
	var small, medium []quant.Matrix
	for _, v := range params {
		m8, err := quant.QuantizeMatrix(v.R, v.C, v.W, quant.Int8)
		check(err)
		m32, err := quant.QuantizeMatrix(v.R, v.C, v.W, quant.F32)
		check(err)
		if len(small) < 4 && len(v.W) <= 256 {
			small = append(small, m8, m32)
		} else if len(medium) < 2 && len(v.W) > 256 && len(v.W) <= maxSeedElems {
			medium = append(medium, m8, m32)
		}
	}
	if len(small) == 0 || len(medium) == 0 {
		check(fmt.Errorf("checkpoint yielded no fixture-sized matrices (%d params)", len(params)))
	}

	dir := filepath.Join("internal", "quant", "testdata", "fuzz", "FuzzQuantRoundTrip")
	check(os.MkdirAll(dir, 0o755))
	write := func(name string, ms []quant.Matrix) {
		data := quant.EncodeMatrices(ms)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		check(os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644))
		fmt.Printf("genquantfixture: wrote %s (%d matrices, %d bytes)\n", filepath.Join(dir, name), len(ms), len(data))
	}
	write("trained_small", small)
	write("trained_medium", medium)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genquantfixture:", err)
		os.Exit(1)
	}
}
