// Command geningest regenerates the checked-in ingest test binaries under
// internal/ingest/testdata: two DWARF-bearing binaries for the external
// eval harness, one stripped binary, and one binary carrying an
// unknown-id section plus a nonstandard custom section. The compiler is
// deterministic, so re-running this produces byte-identical files.
//
// Usage: go run ./scripts/geningest
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cc"
	"repro/internal/leb128"
)

const mathSrc = `
int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
double mean(double *xs, int n) {
	double s = 0.0;
	for (int i = 0; i < n; i = i + 1) { s = s + xs[i]; }
	if (n > 0) { return s / n; }
	return 0.0;
}
long scale(long x, int k) { return x * k; }
`

const stringsSrc = `
int length(char *s) { int n = 0; while (s[n] != 0) { n = n + 1; } return n; }
char *advance(char *s, int n) { return s + n; }
unsigned int hash(char *s) {
	unsigned int h = 2166136261u;
	int i = 0;
	while (s[i] != 0) { h = (h ^ s[i]) * 16777619u; i = i + 1; }
	return h;
}
`

const geomSrc = `
float area(float w, float h) { return w * h; }
float *midpoint(float *a, float *b, float *out) {
	out[0] = (a[0] + b[0]) / 2.0f;
	out[1] = (a[1] + b[1]) / 2.0f;
	return out;
}
`

func main() {
	dir := filepath.Join("internal", "ingest", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, data []byte) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	compile := func(name, src string, debug bool) []byte {
		obj, err := cc.Compile(src, cc.Options{FileName: name, Debug: debug})
		if err != nil {
			fatal(err)
		}
		return obj.Binary
	}

	write("math_debug.wasm", compile("math.c", mathSrc, true))
	write("strings_debug.wasm", compile("strings.c", stringsSrc, true))
	write("geom_stripped.wasm", compile("geom.c", geomSrc, false))

	// A stripped binary with the section zoo real toolchains leave behind:
	// an unknown section id after the code and a producer-style custom
	// section.
	mixed := compile("geom.c", geomSrc, false)
	mixed = appendSection(mixed, 63, []byte{0xca, 0xfe, 0xba, 0xbe})
	var meta []byte
	meta = leb128.AppendUint(meta, uint64(len("snowwhite.meta")))
	meta = append(meta, "snowwhite.meta"...)
	meta = append(meta, `{"generator":"geningest"}`...)
	mixed = appendSection(mixed, 0, meta)
	write("mixed_custom.wasm", mixed)
}

func appendSection(bin []byte, id byte, payload []byte) []byte {
	out := append([]byte(nil), bin...)
	out = append(out, id)
	out = leb128.AppendUint(out, uint64(len(payload)))
	return append(out, payload...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geningest:", err)
	os.Exit(1)
}
