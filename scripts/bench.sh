#!/bin/sh
# Performance benchmarks for the training and prediction hot paths.
# Runs the kernel, train-step, beam-search, evaluation, and serving
# benchmarks and records the parsed results as JSON at the repo root:
#
#   BENCH_train.json    BenchmarkMatmulKernels, BenchmarkBandKernel,
#                       BenchmarkTrainStep{,Transformer}
#   BENCH_predict.json  BenchmarkPredict{,Sequential,Batched},
#                       BenchmarkEvalThroughput,
#                       BenchmarkServerPredictConcurrent
#   BENCH_infer.json    BenchmarkFastKernels (exact vs fast-math
#                       NN/NT/TN), BenchmarkF32Kernels (f32 asm vs
#                       pure-Go), BenchmarkPredictFastMath (end-to-end
#                       full vs fast-math beam decode),
#                       BenchmarkPredictF32 (full vs fast vs f32 decode),
#                       BenchmarkPredictSharedAttn (shared-encoder
#                       attention working set across beam widths),
#                       BenchmarkPredictTransformer (decode behind the
#                       Transformer encoder), BenchmarkQuantizedLoad
#                       (quantized-load latency + resident weight bytes
#                       per engine)
#   BENCH_encoders.md   BiLSTM vs Transformer trained with identical
#                       flags/seed/budget: wall-clock training time and
#                       external-eval accuracy (the EXPERIMENTS.md
#                       architecture-comparison table)
#
# Usage: scripts/bench.sh
#
# BenchmarkEvalThroughput trains a model first; SNOWWHITE_BENCH_PACKAGES
# and SNOWWHITE_BENCH_EPOCHS (exported below unless already set) keep
# that under a few minutes on one CPU — raise them for stabler numbers.
set -eu
cd "$(dirname "$0")/.."

: "${SNOWWHITE_BENCH_PACKAGES:=60}"
: "${SNOWWHITE_BENCH_EPOCHS:=3}"
export SNOWWHITE_BENCH_PACKAGES SNOWWHITE_BENCH_EPOCHS

# to_json turns `go test -bench` output into a JSON document: one entry
# per benchmark line, with ns/op and every custom metric keyed by unit.
# Repeated names (the testing package suffixes them #01, #02, ...) are
# dropped: a sub-benchmark registered twice measures the same thing, and
# a duplicate key would poison downstream comparisons.
to_json() {
	awk '
	BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ {
		base = $1; sub(/#[0-9]+$/, "", base)
		if (seen[base]++) next
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
		for (i = 3; i + 1 <= NF; i += 2)
			printf ", \"%s\": %s", $(i + 1), $i
		printf "}"
	}
	END {
		if (n) printf "\n"
		print "  ],"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchmarks_run\": %d\n", n
		print "}"
	}'
}

echo "== kernel + train-step benchmarks (BENCH_train.json) =="
{
	go test -run '^$' -bench 'BenchmarkMatmulKernels|BenchmarkBandKernel' -benchmem ./internal/ad
	go test -run '^$' -bench 'BenchmarkTrainStep' ./internal/seq2seq
} | tee /dev/stderr | to_json >BENCH_train.json

echo "== predict + eval + serving benchmarks (BENCH_predict.json) =="
{
	go test -run '^$' -bench 'BenchmarkPredict$|BenchmarkPredictSequential$|BenchmarkPredictBatched$' \
		-timeout 30m ./internal/seq2seq
	go test -run '^$' -bench 'BenchmarkEvalThroughput|BenchmarkServerPredictConcurrent' -timeout 30m .
} | tee /dev/stderr | to_json >BENCH_predict.json

echo "== serve load: cold vs warm persistent cache (BENCH_predict.json \"serve\" key) =="
# End-to-end serving latency under open-loop load, measured twice over
# the same persistent cache file: a cold start (empty cache; the sweep's
# first decodes pay full inference) and a warm restart (the compacted
# snapshot replays, so the same requests answer from cache). The cold vs
# warm p50/p99 gap and the warm hit rate land in BENCH_predict.json next
# to the microbenchmarks.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$tmp/snowwhite" ./cmd/snowwhite
"$tmp/snowwhite" train -packages 6 -epochs 1 -seed 1 -j 2 -checkpoint none \
	-out "$tmp/model.bin" 2>/dev/null
serve_addr=127.0.0.1:18652
bench_wasm=internal/ingest/testdata/math_debug.wasm
start_serve() {
	"$tmp/snowwhite" serve -model "$tmp/model.bin" -addr "$serve_addr" \
		-cache-file "$tmp/cache.jsonl" 2>>"$tmp/serve.log" &
	serve_pid=$!
	i=0
	until "$tmp/snowwhite" bench-serve -addr "$serve_addr" -ready >/dev/null 2>&1; do
		i=$((i+1))
		[ "$i" -lt 150 ] || { echo "serve did not become ready"; cat "$tmp/serve.log"; exit 1; }
		sleep 0.2
	done
}
stop_serve() {
	kill -TERM "$serve_pid"
	wait "$serve_pid" || true
	serve_pid=
}
start_serve
"$tmp/snowwhite" bench-serve -addr "$serve_addr" -file "$bench_wasm" \
	-label cold -sweep "5,20" -duration 5s -max-failures 0 \
	-merge-into BENCH_predict.json >/dev/null
stop_serve # graceful stop compacts the cache snapshot
start_serve # warm start replays it
"$tmp/snowwhite" bench-serve -addr "$serve_addr" -file "$bench_wasm" \
	-label warm -sweep "5,20" -duration 5s -max-failures 0 \
	-merge-into BENCH_predict.json >/dev/null
stop_serve

echo "== inference fast-math + f32 + shared-attention benchmarks (BENCH_infer.json) =="
{
	go test -run '^$' -bench 'BenchmarkFastKernels|BenchmarkF32Kernels' ./internal/ad
	go test -run '^$' \
		-bench 'BenchmarkPredictFastMath|BenchmarkPredictF32|BenchmarkPredictSharedAttn|BenchmarkPredictTransformer' \
		-timeout 30m ./internal/seq2seq
	go test -run '^$' -bench 'BenchmarkQuantizedLoad' -timeout 30m ./internal/core
} | tee /dev/stderr | to_json >BENCH_infer.json

echo "== encoder comparison: BiLSTM vs Transformer (BENCH_encoders.md) =="
# The controlled accuracy-vs-throughput comparison: both architectures
# trained on the same corpus with identical flags, seed, and epoch
# budget, then scored on the checked-in external eval binaries. Training
# time is wall clock (this box, one process); accuracy is the aggregate
# eval block of `snowwhite ingest -eval`. The table lands in
# BENCH_encoders.md, which EXPERIMENTS.md's architecture section quotes.
eval_row() { # $1 = ingest -eval report; prints "n top1 top5 tps"
	# The file's last eval block is the cross-binary aggregate.
	awk -F': ' '
		/"labeled_elements"/ { n = $2 + 0 }
		/"top1"/ { t1 = $2 + 0 }
		/"top5"/ { t5 = $2 + 0 }
		/"tps"/  { tp = $2 + 0 }
		END { printf "%d %.3f %.3f %.3f", n, t1, t5, tp }
	' "$1"
}
train_one() { # $1 = encoder, $2 = model out; prints wall-clock seconds
	t0=$(date +%s.%N)
	"$tmp/snowwhite" train -packages "$SNOWWHITE_BENCH_PACKAGES" \
		-epochs "$SNOWWHITE_BENCH_EPOCHS" -seed 1 -j 2 -encoder "$1" \
		-checkpoint none -out "$2" 2>/dev/null
	t1=$(date +%s.%N)
	awk "BEGIN{printf \"%.1f\", $t1 - $t0}"
}
bi_secs=$(train_one bilstm "$tmp/cmp_bilstm.bin")
tf_secs=$(train_one transformer "$tmp/cmp_transformer.bin")
"$tmp/snowwhite" ingest -model "$tmp/cmp_bilstm.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 2 -out "$tmp/cmp_bilstm.json" 2>/dev/null
"$tmp/snowwhite" ingest -model "$tmp/cmp_transformer.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 2 -out "$tmp/cmp_transformer.json" 2>/dev/null
set -- $(eval_row "$tmp/cmp_bilstm.json")
bi_n=$1 bi_t1=$2 bi_t5=$3 bi_tps=$4
set -- $(eval_row "$tmp/cmp_transformer.json")
tf_n=$1 tf_t1=$2 tf_t5=$3 tf_tps=$4
{
	echo "<!-- generated by scripts/bench.sh: encoder comparison at"
	echo "     -packages $SNOWWHITE_BENCH_PACKAGES -epochs $SNOWWHITE_BENCH_EPOCHS -seed 1 -j 2,"
	echo "     external eval on internal/ingest/testdata ($bi_n labeled elements) -->"
	echo
	echo "| encoder | train wall-clock | eval top-1 | eval top-5 | eval TPS |"
	echo "|---|---|---|---|---|"
	echo "| bilstm | ${bi_secs}s | $bi_t1 | $bi_t5 | $bi_tps |"
	echo "| transformer | ${tf_secs}s | $tf_t1 | $tf_t5 | $tf_tps |"
} | tee BENCH_encoders.md

echo "bench: wrote BENCH_train.json BENCH_predict.json BENCH_infer.json BENCH_encoders.md"
