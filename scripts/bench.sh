#!/bin/sh
# Performance benchmarks for the training and prediction hot paths.
# Runs the kernel, train-step, beam-search, evaluation, and serving
# benchmarks and records the parsed results as JSON at the repo root:
#
#   BENCH_train.json    BenchmarkMatmulKernels, BenchmarkBandKernel,
#                       BenchmarkTrainStep
#   BENCH_predict.json  BenchmarkPredict{,Sequential,Batched},
#                       BenchmarkEvalThroughput,
#                       BenchmarkServerPredictConcurrent
#   BENCH_infer.json    BenchmarkFastKernels (exact vs fast-math
#                       NN/NT/TN), BenchmarkPredictFastMath (end-to-end
#                       full vs fast-math beam decode)
#
# Usage: scripts/bench.sh
#
# BenchmarkEvalThroughput trains a model first; SNOWWHITE_BENCH_PACKAGES
# and SNOWWHITE_BENCH_EPOCHS (exported below unless already set) keep
# that under a few minutes on one CPU — raise them for stabler numbers.
set -eu
cd "$(dirname "$0")/.."

: "${SNOWWHITE_BENCH_PACKAGES:=60}"
: "${SNOWWHITE_BENCH_EPOCHS:=3}"
export SNOWWHITE_BENCH_PACKAGES SNOWWHITE_BENCH_EPOCHS

# to_json turns `go test -bench` output into a JSON document: one entry
# per benchmark line, with ns/op and every custom metric keyed by unit.
# Repeated names (the testing package suffixes them #01, #02, ...) are
# dropped: a sub-benchmark registered twice measures the same thing, and
# a duplicate key would poison downstream comparisons.
to_json() {
	awk '
	BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ {
		base = $1; sub(/#[0-9]+$/, "", base)
		if (seen[base]++) next
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
		for (i = 3; i + 1 <= NF; i += 2)
			printf ", \"%s\": %s", $(i + 1), $i
		printf "}"
	}
	END {
		if (n) printf "\n"
		print "  ],"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchmarks_run\": %d\n", n
		print "}"
	}'
}

echo "== kernel + train-step benchmarks (BENCH_train.json) =="
{
	go test -run '^$' -bench 'BenchmarkMatmulKernels|BenchmarkBandKernel' -benchmem ./internal/ad
	go test -run '^$' -bench 'BenchmarkTrainStep' ./internal/seq2seq
} | tee /dev/stderr | to_json >BENCH_train.json

echo "== predict + eval + serving benchmarks (BENCH_predict.json) =="
{
	go test -run '^$' -bench 'BenchmarkPredict$|BenchmarkPredictSequential$|BenchmarkPredictBatched$' \
		-timeout 30m ./internal/seq2seq
	go test -run '^$' -bench 'BenchmarkEvalThroughput|BenchmarkServerPredictConcurrent' -timeout 30m .
} | tee /dev/stderr | to_json >BENCH_predict.json

echo "== inference fast-math benchmarks (BENCH_infer.json) =="
{
	go test -run '^$' -bench 'BenchmarkFastKernels' ./internal/ad
	go test -run '^$' -bench 'BenchmarkPredictFastMath' -timeout 30m ./internal/seq2seq
} | tee /dev/stderr | to_json >BENCH_infer.json

echo "bench: wrote BENCH_train.json BENCH_predict.json BENCH_infer.json"
