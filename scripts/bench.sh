#!/bin/sh
# Performance benchmarks for the training and prediction hot paths.
# Runs the kernel, train-step, beam-search, evaluation, and serving
# benchmarks and records the parsed results as JSON at the repo root:
#
#   BENCH_train.json    BenchmarkMatmulKernels, BenchmarkBandKernel,
#                       BenchmarkTrainStep
#   BENCH_predict.json  BenchmarkPredict{,Sequential,Batched},
#                       BenchmarkEvalThroughput,
#                       BenchmarkServerPredictConcurrent
#   BENCH_infer.json    BenchmarkFastKernels (exact vs fast-math
#                       NN/NT/TN), BenchmarkPredictFastMath (end-to-end
#                       full vs fast-math beam decode)
#
# Usage: scripts/bench.sh
#
# BenchmarkEvalThroughput trains a model first; SNOWWHITE_BENCH_PACKAGES
# and SNOWWHITE_BENCH_EPOCHS (exported below unless already set) keep
# that under a few minutes on one CPU — raise them for stabler numbers.
set -eu
cd "$(dirname "$0")/.."

: "${SNOWWHITE_BENCH_PACKAGES:=60}"
: "${SNOWWHITE_BENCH_EPOCHS:=3}"
export SNOWWHITE_BENCH_PACKAGES SNOWWHITE_BENCH_EPOCHS

# to_json turns `go test -bench` output into a JSON document: one entry
# per benchmark line, with ns/op and every custom metric keyed by unit.
# Repeated names (the testing package suffixes them #01, #02, ...) are
# dropped: a sub-benchmark registered twice measures the same thing, and
# a duplicate key would poison downstream comparisons.
to_json() {
	awk '
	BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ {
		base = $1; sub(/#[0-9]+$/, "", base)
		if (seen[base]++) next
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", $1, $2
		for (i = 3; i + 1 <= NF; i += 2)
			printf ", \"%s\": %s", $(i + 1), $i
		printf "}"
	}
	END {
		if (n) printf "\n"
		print "  ],"
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchmarks_run\": %d\n", n
		print "}"
	}'
}

echo "== kernel + train-step benchmarks (BENCH_train.json) =="
{
	go test -run '^$' -bench 'BenchmarkMatmulKernels|BenchmarkBandKernel' -benchmem ./internal/ad
	go test -run '^$' -bench 'BenchmarkTrainStep' ./internal/seq2seq
} | tee /dev/stderr | to_json >BENCH_train.json

echo "== predict + eval + serving benchmarks (BENCH_predict.json) =="
{
	go test -run '^$' -bench 'BenchmarkPredict$|BenchmarkPredictSequential$|BenchmarkPredictBatched$' \
		-timeout 30m ./internal/seq2seq
	go test -run '^$' -bench 'BenchmarkEvalThroughput|BenchmarkServerPredictConcurrent' -timeout 30m .
} | tee /dev/stderr | to_json >BENCH_predict.json

echo "== serve load: cold vs warm persistent cache (BENCH_predict.json \"serve\" key) =="
# End-to-end serving latency under open-loop load, measured twice over
# the same persistent cache file: a cold start (empty cache; the sweep's
# first decodes pay full inference) and a warm restart (the compacted
# snapshot replays, so the same requests answer from cache). The cold vs
# warm p50/p99 gap and the warm hit rate land in BENCH_predict.json next
# to the microbenchmarks.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$tmp/snowwhite" ./cmd/snowwhite
"$tmp/snowwhite" train -packages 6 -epochs 1 -seed 1 -j 2 -checkpoint none \
	-out "$tmp/model.bin" 2>/dev/null
serve_addr=127.0.0.1:18652
bench_wasm=internal/ingest/testdata/math_debug.wasm
start_serve() {
	"$tmp/snowwhite" serve -model "$tmp/model.bin" -addr "$serve_addr" \
		-cache-file "$tmp/cache.jsonl" 2>>"$tmp/serve.log" &
	serve_pid=$!
	i=0
	until "$tmp/snowwhite" bench-serve -addr "$serve_addr" -ready >/dev/null 2>&1; do
		i=$((i+1))
		[ "$i" -lt 150 ] || { echo "serve did not become ready"; cat "$tmp/serve.log"; exit 1; }
		sleep 0.2
	done
}
stop_serve() {
	kill -TERM "$serve_pid"
	wait "$serve_pid" || true
	serve_pid=
}
start_serve
"$tmp/snowwhite" bench-serve -addr "$serve_addr" -file "$bench_wasm" \
	-label cold -sweep "5,20" -duration 5s -max-failures 0 \
	-merge-into BENCH_predict.json >/dev/null
stop_serve # graceful stop compacts the cache snapshot
start_serve # warm start replays it
"$tmp/snowwhite" bench-serve -addr "$serve_addr" -file "$bench_wasm" \
	-label warm -sweep "5,20" -duration 5s -max-failures 0 \
	-merge-into BENCH_predict.json >/dev/null
stop_serve

echo "== inference fast-math benchmarks (BENCH_infer.json) =="
{
	go test -run '^$' -bench 'BenchmarkFastKernels' ./internal/ad
	go test -run '^$' -bench 'BenchmarkPredictFastMath' -timeout 30m ./internal/seq2seq
} | tee /dev/stderr | to_json >BENCH_infer.json

echo "bench: wrote BENCH_train.json BENCH_predict.json BENCH_infer.json"
