#!/bin/sh
# Repo verification: static checks, build, and the full test suite under
# the race detector (the serving subsystem, predictor, and dataset
# pipeline are exercised concurrently). Usage: scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l cmd internal scripts examples *.go)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi
echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
# The race detector slows model training ~10x; on a single-core host the
# core suite alone exceeds go test's default 10m budget, so be explicit.
go test -race -timeout 30m ./...
echo "== pipeline determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestPipeline(Determinism|RaceStress)|TestGeneratePackageIndependent|TestIndexOrderIndependent' \
	./internal/core ./internal/corpus ./internal/dedup
echo "== eval determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestEvalParallelDeterministic|TestPredictConcurrent|TestValidLossParallelInvariant|TestPredictPooledMatchesReference' \
	./internal/seq2seq
echo "== train determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestFitParallelGolden|TestFitParallelResumeMatchesUninterrupted|TestFitShardedRaceStress' \
	./internal/seq2seq
echo "== batched-predict determinism + server batcher (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestPredictBatchedMatchesSequential|TestPredictMultiMixedK|TestBandKernelAVX2Bitwise' \
	./internal/seq2seq ./internal/ad
go test -race -count=2 -run 'TestBatcher|TestServerBatcherStress' ./internal/server
echo "== fuzz seed corpora (no mutation; smoke-checks the native targets) =="
go test -run 'FuzzRead|FuzzDecode|FuzzRoundTrip|FuzzEncodeDecode|FuzzIngest' \
	./internal/dwarf ./internal/wasm ./internal/leb128 ./internal/bpe ./internal/ingest
echo "== ingest external eval (train tiny model, j1 == j4 == golden, both encoders) =="
# End-to-end: train a small deterministic predictor, ingest the checked-in
# real-binary set with embedded-DWARF scoring, and require byte-identical
# reports at different worker counts AND against the golden file (training
# and batched decoding are bitwise deterministic). The same gate runs for
# a Transformer-encoder model against its own golden, so both
# architectures' full train-to-report paths are pinned. Regenerate the
# goldens with the same train flags after intentional model/report changes:
#   snowwhite train -packages 6 -epochs 1 -seed 1 -j 2 -checkpoint none -out M
#   snowwhite ingest -model M -dir internal/ingest/testdata -eval -k 5 -j 1 \
#     -out internal/ingest/testdata/golden_eval.json
# and with `train ... -encoder transformer` for golden_eval_transformer.json.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/snowwhite" ./cmd/snowwhite
"$tmp/snowwhite" train -packages 6 -epochs 1 -seed 1 -j 2 -checkpoint none \
	-out "$tmp/model.bin" 2>/dev/null
"$tmp/snowwhite" ingest -model "$tmp/model.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 1 -out "$tmp/ingest_j1.json" 2>/dev/null
"$tmp/snowwhite" ingest -model "$tmp/model.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 4 -out "$tmp/ingest_j4.json" 2>/dev/null
cmp "$tmp/ingest_j1.json" "$tmp/ingest_j4.json"
cmp "$tmp/ingest_j1.json" internal/ingest/testdata/golden_eval.json
"$tmp/snowwhite" train -packages 6 -epochs 1 -seed 1 -j 2 -encoder transformer \
	-checkpoint none -out "$tmp/model_tf.bin" 2>/dev/null
"$tmp/snowwhite" ingest -model "$tmp/model_tf.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 1 -out "$tmp/ingest_tf_j1.json" 2>/dev/null
"$tmp/snowwhite" ingest -model "$tmp/model_tf.bin" -dir internal/ingest/testdata \
	-eval -k 5 -j 4 -out "$tmp/ingest_tf_j4.json" 2>/dev/null
cmp "$tmp/ingest_tf_j1.json" "$tmp/ingest_tf_j4.json"
cmp "$tmp/ingest_tf_j1.json" internal/ingest/testdata/golden_eval_transformer.json
echo "== accuracy budget (quantized fast-math vs full precision, top-3 >= 99%) =="
# Reuses the tiny model trained above. The int8+fast-math candidate's
# top-1 prediction must fall within the full-precision top-3 on at least
# 99% of the signature elements in the checked-in eval binaries; acctest
# exits nonzero otherwise. Both the int8 export round trip and the
# in-memory quantization path are exercised.
"$tmp/snowwhite" export -model "$tmp/model.bin" -out "$tmp/model.qbin" -quantize int8 2>/dev/null
"$tmp/snowwhite" acctest -model "$tmp/model.bin" -fast-model "$tmp/model.qbin" \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >"$tmp/acctest.json" 2>/dev/null
"$tmp/snowwhite" acctest -model "$tmp/model.bin" -quantize f32 \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >/dev/null 2>&1
# The Transformer model trained above owes the same budget: its fast-math
# decode (grouped attention + FMA kernels through the encoder interface)
# must agree with its own full-precision top-3 on >= 99% of elements.
"$tmp/snowwhite" acctest -model "$tmp/model_tf.bin" -quantize f32 \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >/dev/null 2>&1
echo "== f32 engine accuracy + determinism (top-3 >= 99%, byte-identical reports) =="
# The single-precision inference engine (-precision f32: float32 tapes
# and 8-lane kernels end to end) owes the same budget on both encoder
# architectures, and its decode must be bitwise deterministic: two
# identical f32 acctest runs must emit byte-identical reports.
"$tmp/snowwhite" acctest -model "$tmp/model.bin" -quantize f32 -precision f32 \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >"$tmp/acctest_f32_a.json" 2>/dev/null
"$tmp/snowwhite" acctest -model "$tmp/model.bin" -quantize f32 -precision f32 \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >"$tmp/acctest_f32_b.json" 2>/dev/null
cmp "$tmp/acctest_f32_a.json" "$tmp/acctest_f32_b.json"
"$tmp/snowwhite" acctest -model "$tmp/model_tf.bin" -quantize f32 -precision f32 \
	-dir internal/ingest/testdata -k 3 -budget 0.99 >/dev/null 2>&1
echo "== cache snapshot round-trip determinism (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestCacheSnapshotRoundTripDeterminism|TestLRUEntriesOrder|TestCacheLogTornTail' \
	./internal/server
echo "== bench-serve smoke: zero failed requests across a SIGHUP hot swap =="
# Reuses the tiny model trained above: start the server with a persistent
# cache, drive it open-loop at low QPS, hot-swap the model with SIGHUP
# mid-run, and require zero failed requests (the zero-downtime gate).
# After a graceful stop the compacted cache must replay: a second server
# over the same file, stopped untouched, must re-emit a byte-identical
# snapshot (CLI-level persistence determinism).
trap 'rm -rf "$tmp"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
serve_addr=127.0.0.1:18653
bench_wasm=internal/ingest/testdata/math_debug.wasm
wait_ready() {
	# -ready probes /healthz only: it must not touch the prediction cache,
	# or the untouched-restart snapshot comparison below would see a
	# reordered LRU.
	i=0
	until "$tmp/snowwhite" bench-serve -addr "$serve_addr" -ready >/dev/null 2>&1; do
		i=$((i+1))
		[ "$i" -lt 150 ] || { echo "serve did not become ready"; cat "$tmp/serve.log" 2>/dev/null || true; exit 1; }
		sleep 0.2
	done
}
"$tmp/snowwhite" serve -model "$tmp/model.bin" -addr "$serve_addr" \
	-cache-file "$tmp/serve-cache.jsonl" 2>"$tmp/serve.log" &
serve_pid=$!
wait_ready
"$tmp/snowwhite" bench-serve -addr "$serve_addr" -file "$bench_wasm" \
	-qps 4 -duration 6s -max-failures 0 >/dev/null &
bench_pid=$!
sleep 2
kill -HUP "$serve_pid"
wait "$bench_pid"
kill -TERM "$serve_pid"
wait "$serve_pid" || true
serve_pid=
[ -s "$tmp/serve-cache.jsonl" ] || { echo "no cache snapshot written"; exit 1; }
cp "$tmp/serve-cache.jsonl" "$tmp/serve-cache.before"
"$tmp/snowwhite" serve -model "$tmp/model.bin" -addr "$serve_addr" \
	-cache-file "$tmp/serve-cache.jsonl" 2>>"$tmp/serve.log" &
serve_pid=$!
wait_ready
kill -TERM "$serve_pid"
wait "$serve_pid" || true
serve_pid=
cmp "$tmp/serve-cache.before" "$tmp/serve-cache.jsonl"
echo "verify: OK"
