#!/bin/sh
# Repo verification: static checks, build, and the full test suite under
# the race detector (the serving subsystem, predictor, and dataset
# pipeline are exercised concurrently). Usage: scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
# The race detector slows model training ~10x; on a single-core host the
# core suite alone exceeds go test's default 10m budget, so be explicit.
go test -race -timeout 30m ./...
echo "== pipeline determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestPipeline(Determinism|RaceStress)|TestGeneratePackageIndependent|TestIndexOrderIndependent' \
	./internal/core ./internal/corpus ./internal/dedup
echo "== eval determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestEvalParallelDeterministic|TestPredictConcurrent|TestValidLossParallelInvariant|TestPredictPooledMatchesReference' \
	./internal/seq2seq
echo "== train determinism/race stress (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestFitParallelGolden|TestFitParallelResumeMatchesUninterrupted|TestFitShardedRaceStress' \
	./internal/seq2seq
echo "== batched-predict determinism + server batcher (-count=2 to vary scheduling) =="
go test -race -count=2 -run 'TestPredictBatchedMatchesSequential|TestPredictMultiMixedK|TestBandKernelAVX2Bitwise' \
	./internal/seq2seq ./internal/ad
go test -race -count=2 -run 'TestBatcher|TestServerBatcherStress' ./internal/server
echo "== fuzz seed corpora (no mutation; smoke-checks the native targets) =="
go test -run 'FuzzRead|FuzzDecode|FuzzRoundTrip|FuzzEncodeDecode' \
	./internal/dwarf ./internal/wasm ./internal/leb128 ./internal/bpe
echo "verify: OK"
