#!/bin/sh
# Repo verification: static checks, build, and the full test suite under
# the race detector (the serving subsystem and predictor are exercised
# concurrently). Usage: scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test -race =="
go test -race ./...
echo "verify: OK"
